#pragma once
// One terminal's half of a live key agreement, sans-io.
//
// A NodeSession is the distributed counterpart of GroupSecretSession: it
// owns exactly one terminal and speaks the thinaird wire protocol to a
// SessionHub, reusing the unmodified phase-1/phase-2 computations
// (core/phase1.h, core/phase2.h). Rounds rotate the Alice role through
// the roster in ascending node-id order; whichever terminal's turn it is
// drives the round:
//
//   as Alice     broadcast N x-payloads (kData, drawn from the node's own
//                payload stream), mark the end (kEndOfX), collect every
//                peer's reception report, run phase 1 + phase 2 exactly as
//                the in-process session does, and reliably broadcast the
//                y identities, the z contents and the s identities.
//   as receiver  record which x-packets survived the hub's erasure draws,
//                report them, rebuild Alice's pool view from the public
//                y-announcement (audience = {self} iff the combination's
//                support lies inside the own reception set), rebuild the
//                phase-2 plan from public sizes alone (plan_phase2(M, L)),
//                repair the missing y-packets from the z contents and
//                evaluate the s-packets.
//
// Both sides append the same s-payload bytes, so every terminal of a
// session derives the byte-identical secret — the property the e2e tests
// pin against the in-process reference.
//
// The class is sans-io and clock-free: callers feed received datagrams
// (on_datagram), advance time (on_tick) and drain outgoing datagrams
// (poll_datagram). Reliability over real UDP comes from two mechanisms:
// stop-and-wait ARQ towards the hub (every client frame is acknowledged;
// the in-flight frame retransmits on timeout, and the hub's ack cache
// makes retransmits draw-neutral), and an ordered relay stream from the
// hub (per-member sequence numbers; gaps trigger kNack recovery, idle
// periods a probe kNack so a lost final relay cannot deadlock the round).
// The roster announcement (kReady) is covered too: relays that overtake it
// are buffered until the roster arrives, and a joining node whose attach
// was acked re-sends the attach on the probe timer — the hub replays
// kAttachOk/kReady idempotently — so a lost kReady cannot wedge the join.

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "channel/rng.h"
#include "core/reception.h"
#include "netd/wire.h"
#include "packet/arena.h"
#include "packet/serialize.h"

namespace thinair::netd {

struct NodeConfig {
  std::uint64_t session_id = 1;
  std::uint16_t node = 0;      // this terminal's id (< 64)
  std::uint16_t members = 2;   // expected roster size (all clients agree)
  std::size_t x_packets_per_round = 24;  // N
  std::size_t payload_bytes = 32;
  std::size_t rounds = 0;  // 0 = one round per terminal
  std::uint64_t payload_seed = 7;  // this node's x-payload stream
  double rto_s = 0.05;     // ARQ retransmit timeout
  double probe_s = 0.25;   // idle relay-probe period
  std::size_t max_retries = 200;  // ARQ attempts before giving up
};

class NodeSession {
 public:
  enum class State : std::uint8_t {
    kIdle,       // constructed, start() not called
    kJoining,    // attach sent, waiting for the roster
    kRunning,    // key agreement in progress
    kClosing,    // all rounds done, kBye in flight
    kDone,       // secret complete, session closed
    kFailed,     // protocol error (see error())
  };

  explicit NodeSession(NodeConfig config);

  /// Restore construction-equivalent state for a new config: every state
  /// machine field returns to its initial value; the payload arena keeps
  /// its blocks (trimmed to the watermark policy) and containers keep
  /// their capacity. A pooled NodeSession therefore derives exactly the
  /// bytes a freshly constructed one would — the runtime::ObjectPool
  /// contract the daemon's churn path relies on.
  void reset(NodeConfig config);

  /// Queue the attach handshake. Idempotent.
  void start(double now_s);

  /// Feed one datagram received from the hub.
  void on_datagram(std::span<const std::uint8_t> bytes, double now_s);

  /// Advance timers: ARQ retransmission and the idle relay probe.
  void on_tick(double now_s);

  /// Drain the next outgoing datagram into `out`. Returns false when
  /// nothing is pending.
  bool poll_datagram(std::vector<std::uint8_t>& out);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool done() const { return state_ == State::kDone; }
  [[nodiscard]] bool failed() const { return state_ == State::kFailed; }
  [[nodiscard]] const std::string& error() const { return error_; }

  /// Concatenated s-payloads over all rounds (the shared secret).
  [[nodiscard]] const std::vector<std::uint8_t>& secret() const {
    return secret_;
  }
  /// Roster of terminals, ascending node id (valid once running).
  [[nodiscard]] const std::vector<std::uint16_t>& roster() const {
    return roster_;
  }
  [[nodiscard]] std::size_t rounds_completed() const { return round_; }

 private:
  // Receiver-side state of one round, keyed by round index.
  struct RoundRx {
    std::map<std::uint32_t, std::vector<std::uint8_t>> x;  // seq -> payload
    std::uint32_t universe = 0;  // N, learned from kEndOfX (0 = not yet)
    bool reported = false;
    std::optional<packet::Announcement> y_ann;
    std::map<std::uint32_t, std::vector<std::uint8_t>> z;  // seq -> payload
  };

  // Alice-side state of the round this node is driving.
  struct AliceRound {
    std::vector<std::vector<std::uint8_t>> x;  // all N payloads
    std::map<std::uint16_t, packet::ReceptionReport> reports;
  };

  void fail(std::string why);
  void queue_frame(Frame f);           // reliable (ARQ) path
  void send_immediate(const Frame& f);  // fire-and-forget (kNack)
  void pump(double now_s);
  void on_hub_frame(const Frame& f, double now_s);
  void on_relay(const Frame& f, double now_s);
  void drain_relays(double now_s);  // deliver buffered in-order relays
  void deliver(const Frame& f, double now_s);  // in-order relayed frame
  void on_ctrl(const Frame& f, double now_s);
  void maybe_start_round(double now_s);
  void start_alice_round(double now_s);
  void finish_alice_round(double now_s);
  void finish_receiver_round(std::uint32_t round,
                             const packet::Announcement& s_ann, double now_s);
  void round_complete(double now_s);
  /// Node id driving `round`, or an id no member can hold while the
  /// roster is still unknown (node ids are < 64; never divides by zero).
  [[nodiscard]] std::uint16_t alice_of(std::uint32_t round) const {
    return roster_.empty() ? 0xFFFF : roster_[round % roster_.size()];
  }
  [[nodiscard]] std::size_t total_rounds() const {
    return config_.rounds == 0 ? roster_.size() : config_.rounds;
  }

  NodeConfig config_;
  State state_ = State::kIdle;
  std::string error_;
  channel::Rng payload_rng_;
  packet::PayloadArena arena_;

  // Outgoing: stop-and-wait ARQ over `queue_`, plus an immediate outbox.
  std::deque<Frame> queue_;
  std::optional<Frame> inflight_;
  std::vector<std::uint8_t> inflight_wire_;
  double last_send_s_ = 0.0;
  std::size_t retries_ = 0;
  std::deque<std::vector<std::uint8_t>> outbox_;

  // Incoming: ordered relay stream reassembly.
  std::uint32_t next_relay_ = 0;
  std::map<std::uint32_t, Frame> pending_relays_;
  double last_rx_s_ = 0.0;
  double last_probe_s_ = 0.0;

  // Protocol state.
  bool attached_ = false;
  std::vector<std::uint16_t> roster_;  // terminals, ascending id
  std::uint32_t round_ = 0;            // rounds completed locally
  bool round_active_ = false;
  std::map<std::uint32_t, RoundRx> rx_;
  std::optional<AliceRound> alice_;
  std::vector<std::uint8_t> secret_;
};

}  // namespace thinair::netd
