#include "netd/hub.h"

#include <algorithm>
#include <string_view>

#include "channel/erasure.h"
#include "packet/packet.h"
#include "runtime/seed.h"

namespace thinair::netd {

namespace {

/// Roster cap: the kTxReport delivery mask is one u32 bit per member.
constexpr std::uint16_t kMaxMembers = 32;

std::vector<std::uint8_t> message_payload(std::string_view text) {
  return {text.begin(), text.end()};
}

net::TrafficClass class_of(std::uint8_t phase) {
  switch (static_cast<WirePhase>(phase)) {
    case WirePhase::kXData: return net::TrafficClass::kData;
    case WirePhase::kZCoded: return net::TrafficClass::kCoded;
    default: return net::TrafficClass::kControl;
  }
}

}  // namespace

SessionHub::SessionHub(HubConfig config)
    : config_(std::move(config)),
      wheel_(std::max(config_.idle_timeout_s / 4.0, 0.25), 64) {
  if (config_.model == nullptr)
    config_.model = std::make_shared<channel::IidErasure>(config_.loss_p);
}

Frame SessionHub::make_control(FrameType type, std::uint64_t session,
                               std::uint16_t node, std::uint32_t aux) {
  Frame f;
  f.header.type = static_cast<std::uint8_t>(type);
  f.header.session = session;
  f.header.node = node;
  f.header.aux = aux;
  return f;
}

void SessionHub::on_datagram(std::span<const std::uint8_t> bytes, double now_s,
                             std::vector<Outgoing>& out) {
  stats_.datagrams_in.fetch_add(1, std::memory_order_relaxed);
  DecodeResult decoded = decode(bytes);
  if (!decoded.frame.has_value()) {
    stats_.decode_errors.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const Frame& f = *decoded.frame;
  const std::uint64_t id = f.header.session;

  util::MutexLock lock(&mu_);
  switch (static_cast<FrameType>(f.header.type)) {
    case FrameType::kAttach:
      handle_attach(f, now_s, out);
      return;
    case FrameType::kData:
    case FrameType::kCtrl: {
      auto it = sessions_.find(id);
      if (it == sessions_.end()) {
        out.push_back({id, f.header.node,
                       encode(make_control(FrameType::kExpired, id,
                                           f.header.node))});
        return;
      }
      it->second->last_active_s = now_s;
      handle_broadcast(*it->second, f, out);
      return;
    }
    case FrameType::kNack: {
      auto it = sessions_.find(id);
      if (it == sessions_.end()) return;
      it->second->last_active_s = now_s;
      handle_nack(*it->second, f, out);
      return;
    }
    case FrameType::kBye: {
      auto it = sessions_.find(id);
      if (it == sessions_.end()) {
        // Already gone (e.g. the final kBye echo was lost): re-echo so the
        // retransmitting client can finish.
        out.push_back({id, f.header.node,
                       encode(make_control(FrameType::kBye, id,
                                           f.header.node))});
        return;
      }
      it->second->last_active_s = now_s;
      handle_bye(id, *it->second, f, out);
      return;
    }
    default:
      // Hub-origin frame types arriving at the hub are protocol noise.
      return;
  }
}

void SessionHub::handle_attach(const Frame& f, double now_s,
                               std::vector<Outgoing>& out) {
  const std::uint64_t id = f.header.session;
  const std::uint16_t node = f.header.node;
  const std::uint16_t expected = static_cast<std::uint16_t>(f.header.aux);

  auto reply_error = [&](std::string_view why) {
    Frame e = make_control(FrameType::kError, id, node);
    e.payload = message_payload(why);
    out.push_back({id, node, encode(e)});
  };

  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    if (expected < 2 || expected > kMaxMembers) {
      reply_error("attach: expected member count out of range");
      return;
    }
    if (config_.max_sessions != 0 && sessions_.size() >= config_.max_sessions) {
      reply_error("attach: session table full");
      return;
    }
    it = sessions_
             .emplace(id, session_pool_.acquire_scoped(channel::Rng(
                              runtime::derive_seed(config_.seed, id))))
             .first;
    it->second->expected = expected;
    stats_.sessions_opened.fetch_add(1, std::memory_order_relaxed);
    wheel_.schedule(id, now_s + config_.idle_timeout_s);
  }
  Session& s = *it->second;
  s.last_active_s = now_s;

  auto send_ready = [&](std::uint16_t to) {
    Frame r = make_control(FrameType::kReady, id, to);
    r.payload.reserve(2 + s.members.size() * 3);
    r.payload.push_back(static_cast<std::uint8_t>(s.members.size()));
    r.payload.push_back(static_cast<std::uint8_t>(s.members.size() >> 8));
    for (const auto& [mid, m] : s.members) {
      r.payload.push_back(static_cast<std::uint8_t>(mid));
      r.payload.push_back(static_cast<std::uint8_t>(mid >> 8));
      r.payload.push_back(m.eve ? kFlagEve : 0);
    }
    out.push_back({id, to, encode(r)});
  };

  if (auto mit = s.members.find(node); mit != s.members.end()) {
    // Retransmitted attach: idempotent replay.
    out.push_back({id, node,
                   encode(make_control(
                       FrameType::kAttachOk, id, node,
                       static_cast<std::uint32_t>(s.members.size())))});
    if (s.ready) send_ready(node);
    return;
  }
  if (s.ready) {
    reply_error("attach: roster already complete");
    return;
  }
  if (expected != s.expected) {
    reply_error("attach: expected member count disagrees");
    return;
  }

  Member m;
  m.eve = (f.header.flags & kFlagEve) != 0;
  s.members.emplace(node, std::move(m));
  out.push_back({id, node,
                 encode(make_control(
                     FrameType::kAttachOk, id, node,
                     static_cast<std::uint32_t>(s.members.size())))});
  if (s.members.size() == s.expected) {
    s.ready = true;
    for (const auto& [mid, member] : s.members) send_ready(mid);
  }
}

void SessionHub::account(Session& s, const Frame& f) {
  // Mirror the in-process medium's accounting: the virtual frame is the
  // protocol packet (16-byte slim header + payload), not the UDP datagram.
  const std::size_t bytes = packet::Packet::header_size() + f.payload.size();
  const double airtime = config_.mac.per_frame_overhead_s +
                         static_cast<double>(bytes) * 8.0 /
                             config_.mac.data_rate_bps;
  s.ledger.add(class_of(f.header.phase), bytes, airtime);
  s.air_s += airtime + config_.mac.inter_frame_gap_s;
}

void SessionHub::relay_to(std::uint64_t session_id, std::uint16_t node,
                          Member& member, Frame wire,
                          std::vector<Outgoing>& out) {
  wire.header.type = static_cast<std::uint8_t>(FrameType::kRelay);
  wire.header.flags = 0;
  wire.header.aux = member.next_relay_seq++;
  std::vector<std::uint8_t> datagram = encode(wire);
  member.ring.emplace_back(wire.header.aux, datagram);
  while (member.ring.size() > config_.relay_window) member.ring.pop_front();
  out.push_back({session_id, node, std::move(datagram)});
  stats_.frames_relayed.fetch_add(1, std::memory_order_relaxed);
}

void SessionHub::handle_broadcast(Session& s, const Frame& f,
                                  std::vector<Outgoing>& out) {
  const std::uint64_t id = f.header.session;
  const std::uint16_t source = f.header.node;
  auto sit = s.members.find(source);
  if (sit == s.members.end() || !s.ready) {
    Frame e = make_control(FrameType::kError, id, source);
    e.payload = message_payload(sit == s.members.end()
                                    ? "broadcast: unknown member"
                                    : "broadcast: session not ready");
    out.push_back({id, source, encode(e)});
    return;
  }
  Member& sender = sit->second;

  // Client-side ARQ absorption: a retransmit of the frame we acked last
  // replays the cached ack verbatim — no new draws, no duplicate relays.
  const AckKey key{f.header.type, f.header.phase, f.header.round,
                   f.header.seq};
  if (sender.last_key == key) {
    out.push_back({id, source, sender.last_ack});
    return;
  }

  const bool lossy = f.header.type == static_cast<std::uint8_t>(
                                          FrameType::kData);
  const bool no_relay = (f.header.flags & kFlagNoRelay) != 0;
  const std::size_t tx_slot =
      static_cast<std::size_t>(s.air_s / config_.mac.slot_duration_s);
  account(s, f);

  const channel::ErasureModel& model = *config_.model;

  std::uint32_t mask = 0;
  std::uint32_t bit = 0;
  for (auto& [mid, member] : s.members) {
    if (mid == source) {
      ++bit;
      continue;
    }
    bool delivered = true;
    if (lossy) {
      const channel::LinkContext link{packet::NodeId{source},
                                      packet::NodeId{mid}, tx_slot};
      delivered = !model.erased(s.rng, link);
    }
    if (delivered) {
      mask |= (1u << bit);
      if (!no_relay) relay_to(id, mid, member, f, out);
    }
    ++bit;
  }

  Frame ack = make_control(
      lossy ? FrameType::kTxReport : FrameType::kCtrlAck, id, source,
      lossy ? mask : 0);
  ack.header.phase = f.header.phase;
  ack.header.round = f.header.round;
  ack.header.seq = f.header.seq;
  sender.last_key = key;
  sender.last_ack = encode(ack);
  out.push_back({id, source, sender.last_ack});
}

void SessionHub::handle_nack(Session& s, const Frame& f,
                             std::vector<Outgoing>& out) {
  auto it = s.members.find(f.header.node);
  if (it == s.members.end()) return;
  Member& member = it->second;
  const std::uint32_t first_missing = f.header.aux;
  if (first_missing >= member.next_relay_seq) return;  // keepalive probe
  const std::uint32_t oldest =
      member.ring.empty() ? member.next_relay_seq : member.ring.front().first;
  if (first_missing < oldest) {
    // The requested seq has been evicted from the relay ring: the gap is
    // unrecoverable, so fail the member fast instead of letting it re-NACK
    // until its deadline.
    Frame e = make_control(FrameType::kError, f.header.session, f.header.node);
    e.payload =
        message_payload("nack: relay history evicted (unrecoverable gap; "
                        "raise relay_window)");
    out.push_back({f.header.session, f.header.node, encode(e)});
    return;
  }
  for (const auto& [seq, datagram] : member.ring) {
    if (seq < first_missing) continue;
    out.push_back({f.header.session, f.header.node, datagram});
    stats_.nack_retransmits.fetch_add(1, std::memory_order_relaxed);
  }
}

void SessionHub::handle_bye(std::uint64_t id, Session& s, const Frame& f,
                            std::vector<Outgoing>& out) {
  auto it = s.members.find(f.header.node);
  if (it == s.members.end()) return;
  it->second.bye = true;
  out.push_back(
      {id, f.header.node, encode(make_control(FrameType::kBye, id,
                                              f.header.node))});
  const bool all_done = std::all_of(
      s.members.begin(), s.members.end(),
      [](const auto& kv) { return kv.second.bye; });
  if (all_done) {
    sessions_.erase(id);
    stats_.sessions_closed.fetch_add(1, std::memory_order_relaxed);
  }
}

void SessionHub::expire_session(std::uint64_t id, std::vector<Outgoing>& out) {
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return;
  for (const auto& [mid, member] : it->second->members)
    out.push_back({id, mid, encode(make_control(FrameType::kExpired, id,
                                                mid))});
  sessions_.erase(it);
  stats_.sessions_expired.fetch_add(1, std::memory_order_relaxed);
}

void SessionHub::on_tick(double now_s, std::vector<Outgoing>& out) {
  util::MutexLock lock(&mu_);
  for (const TimerWheel::Entry& entry : wheel_.advance(now_s)) {
    auto it = sessions_.find(entry.id);
    if (it == sessions_.end()) continue;  // closed since scheduling
    const double deadline = it->second->last_active_s + config_.idle_timeout_s;
    if (deadline <= now_s) {
      expire_session(entry.id, out);
    } else {
      wheel_.schedule(entry.id, deadline);  // touched: lazy reinsertion
    }
  }
}

runtime::PoolCounters SessionHub::session_pool_counters() const {
  util::MutexLock lock(&mu_);
  return session_pool_.stats().snapshot();
}

const net::Ledger* SessionHub::session_ledger(std::uint64_t id) const {
  util::MutexLock lock(&mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second->ledger;
}

}  // namespace thinair::netd
