#pragma once
// Thin RAII + error-handling wrappers over BSD UDP sockets, shared by the
// daemon, the blocking client runner, SocketMedium and the bench's client
// pool. IPv4 only (the daemon is a loopback/LAN tool).

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include <netinet/in.h>

namespace thinair::netd {

/// An owned non-blocking UDP socket.
class UdpSocket {
 public:
  UdpSocket() = default;
  ~UdpSocket();
  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Open and bind to host:port (port 0 = kernel-assigned). Non-blocking.
  /// Throws std::system_error on failure.
  static UdpSocket bind(const std::string& host, std::uint16_t port);

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] std::uint16_t local_port() const;

  /// sendto(); returns false on EAGAIN (datagram dropped — UDP semantics,
  /// the ARQ layers recover). Throws on hard errors.
  bool send_to(const sockaddr_in& to, std::span<const std::uint8_t> bytes);

  /// Non-blocking recvfrom() into `buf` (resized to the datagram). Returns
  /// false when nothing is pending.
  bool recv_from(std::vector<std::uint8_t>& buf, sockaddr_in& from);

  /// Block up to timeout_ms for readability (poll on this fd only).
  bool wait_readable(int timeout_ms);

 private:
  explicit UdpSocket(int fd) : fd_(fd) {}
  int fd_ = -1;
};

/// Resolve a dotted-quad (or "localhost") + port to a sockaddr_in. Throws
/// std::invalid_argument on unparseable input.
[[nodiscard]] sockaddr_in make_addr(const std::string& host,
                                    std::uint16_t port);

/// Addressing key for the daemon's peer book.
struct PeerKey {
  std::uint64_t session = 0;
  std::uint16_t node = 0;
  friend auto operator<=>(const PeerKey&, const PeerKey&) = default;
};

}  // namespace thinair::netd
