#include "runtime/scenario.h"

#include <algorithm>
#include <stdexcept>

namespace thinair::runtime {

double metric(const CaseResult& result, const std::string& name) {
  for (const Metric& m : result.metrics)
    if (m.name == name) return m.value;
  throw std::out_of_range("metric: no metric named '" + name + "'");
}

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(Scenario scenario) {
  if (scenario.name.empty())
    throw std::invalid_argument("ScenarioRegistry: empty name");
  if (!scenario.plan || !scenario.run)
    throw std::invalid_argument("ScenarioRegistry: scenario '" +
                                scenario.name + "' missing plan or run");
  if (find(scenario.name) != nullptr)
    throw std::invalid_argument("ScenarioRegistry: duplicate scenario '" +
                                scenario.name + "'");
  scenarios_.push_back(std::make_unique<Scenario>(std::move(scenario)));
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  for (const auto& s : scenarios_)
    if (s->name == name) return s.get();
  return nullptr;
}

std::vector<const Scenario*> ScenarioRegistry::list() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& s : scenarios_) out.push_back(s.get());
  std::sort(out.begin(), out.end(),
            [](const Scenario* a, const Scenario* b) {
              return a->name < b->name;
            });
  return out;
}

}  // namespace thinair::runtime
