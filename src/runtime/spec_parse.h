#pragma once
// Text front-end for ScenarioSpec: a deterministic TOML-subset so
// scenarios are files, not code.
//
//   # comment
//   name = "fig2-iid"            # top-level keys before any section
//   description = "..."
//
//   [channel]                    # one [section] per spec sub-struct
//   model = "iid"                # strings: quoted or bare words
//   p = 0.2                      # numbers: shortest-round-trip doubles
//
//   [topology]
//   n = 3..8                     # integer ranges, or [3, 4, 5] lists
//
//   [sweep]
//   p = 0.1:0.9:0.1              # double ranges (inclusive, fixed step)
//
// The full grammar — every section, key, value form and default — is
// documented in docs/scenarios.md and enforced here with line-accurate
// error messages ("line 4: channel.p: expected a number, got 'banana'").
//
// serialize_spec is the inverse: it emits every supported key in
// canonical order, so parse_spec(serialize_spec(s)) == s for every valid
// spec (the `thinair describe` round-trip guarantee), and a serialized
// spec doubles as a template listing every knob.
//
// apply_override implements `--set section.key=value`: one dotted path
// assigned onto an existing spec, using the same key table and value
// syntax as the file format.

#include <stdexcept>
#include <string>
#include <string_view>

#include "runtime/scenario_spec.h"

namespace thinair::runtime {

/// Parse or override failure; .what() is the full human-readable message.
class SpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parse a whole spec file. Unset keys keep their ScenarioSpec defaults.
/// Throws SpecError with a "line N: ..." message on malformed input; the
/// result still needs compile() (which validates cross-field consistency).
[[nodiscard]] ScenarioSpec parse_spec(std::string_view text);

/// Serialise a spec in canonical section/key order (see round-trip note
/// above).
[[nodiscard]] std::string serialize_spec(const ScenarioSpec& spec);

/// Assign one dotted-path override: key "channel.p" (or top-level "name"),
/// value in file syntax. Throws SpecError ("channel.p: ...") on an unknown
/// path or a malformed value.
void apply_override(ScenarioSpec& spec, std::string_view key,
                    std::string_view value);

}  // namespace thinair::runtime
