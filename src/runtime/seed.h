#pragma once
// Deterministic per-task seed derivation for the scenario runtime.
//
// Every case in a sweep gets its own RNG seed derived purely from
// (master_seed, case_index) — never from execution order — so a sweep
// produces bit-identical results whether it runs on 1 thread or 64. The
// derivation is a SplitMix64 stream: the case index advances the state by
// the 64-bit golden-ratio increment and the output mix decorrelates
// neighbouring indices (the same construction channel::Rng uses to expand
// one seed into xoshiro state).

#include <cstdint>

namespace thinair::runtime {

/// Seed for case `index` of a sweep keyed by `master_seed`. Stateless and
/// collision-resistant across indices; derive_seed(m, i) != 0 is not
/// guaranteed, but channel::Rng accepts any seed.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master_seed,
                                        std::uint64_t index);

/// A second independent stream from the same (master, index) pair, for
/// cases that need two uncorrelated generators (e.g. a group run and a
/// unicast baseline inside one case).
[[nodiscard]] std::uint64_t derive_seed2(std::uint64_t master_seed,
                                         std::uint64_t index);

}  // namespace thinair::runtime
