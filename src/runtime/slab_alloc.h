#pragma once
// Slab arena + STL allocator for the drainer's reorder buffer.
//
// The reorder buffer (ResultSink::pending_) is a std::map that churns
// one node per out-of-order case: under a skewed schedule (or a
// distributed run whose shards finish out of order) the default
// allocator pays a malloc/free round trip per case. SlabArena replaces
// that with bump allocation out of 64 KiB chunks plus a per-size free
// list, so steady-state node churn recycles the same few cache-hot
// blocks and never touches the global heap.
//
// Deliberately single-threaded: the arena is owned by whoever owns the
// container it backs (for ResultSink that is the drainer role, so the
// arena member carries the same THINAIR_GUARDED_BY annotation as the
// map). Chunks are only ever freed by the arena's destructor, which
// must therefore outlive the container — declare the arena before the
// container in the owning class.
//
// Stats are part of the contract, not an afterthought: bench/micro_engine
// reports them into BENCH_engine.json so CI can see that the free list
// actually recycles (freelist_hits) and that chunk growth stays bounded
// by the reorder high-water mark rather than total case count.

#include <cstddef>
#include <limits>
#include <memory>
#include <new>
#include <vector>

namespace thinair::runtime {

class SlabArena {
 public:
  /// Upstream allocation unit. Large enough that even a pathological
  /// reorder window amortises the heap round trips away; small enough
  /// that an in-order run wastes at most one chunk.
  static constexpr std::size_t kChunkBytes = 64 * 1024;

  SlabArena() = default;
  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  struct Stats {
    std::size_t chunks = 0;          ///< upstream heap chunks allocated
    std::size_t reserved_bytes = 0;  ///< bytes those chunks span
    std::size_t acquires = 0;        ///< total block acquisitions
    std::size_t freelist_hits = 0;   ///< acquisitions served by recycling
    std::size_t live_blocks = 0;     ///< acquired minus released
  };

  /// A block of at least `bytes` bytes, aligned for any ordinary type.
  /// Recycles a released block of the same size class when one exists;
  /// otherwise bumps the current chunk (growing by kChunkBytes, or by
  /// the rounded request if larger).
  void* acquire(std::size_t bytes) {
    const std::size_t size = round_up(bytes);
    ++stats_.acquires;
    ++stats_.live_blocks;
    FreeNode*& head = bucket_head(size);
    if (head != nullptr) {
      ++stats_.freelist_hits;
      FreeNode* node = head;
      head = node->next;
      return node;
    }
    if (bump_left_ < size) grow(size);
    std::byte* block = bump_;
    bump_ += size;
    bump_left_ -= size;
    return block;
  }

  /// Return a block acquired with the same `bytes`. The memory stays
  /// reserved on the size class's free list for the next acquire.
  void release(void* block, std::size_t bytes) noexcept {
    const std::size_t size = round_up(bytes);
    FreeNode*& head = bucket_head(size);
    // The released block becomes its own free-list node — the classic
    // intrusive trick; round_up guarantees it is big enough.
    auto* node = ::new (block) FreeNode{head};
    head = node;
    --stats_.live_blocks;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static constexpr std::size_t kAlign =
      alignof(std::max_align_t) > sizeof(FreeNode) ? alignof(std::max_align_t)
                                                   : sizeof(FreeNode);

  static constexpr std::size_t round_up(std::size_t bytes) {
    return ((bytes < 1 ? 1 : bytes) + kAlign - 1) / kAlign * kAlign;
  }

  /// Free-list head for one size class. Node containers hit a handful
  /// of distinct sizes, so a tiny linear-scanned vector beats a map.
  FreeNode*& bucket_head(std::size_t size) {
    for (Bucket& bucket : buckets_)
      if (bucket.size == size) return bucket.head;
    buckets_.push_back(Bucket{size, nullptr});
    return buckets_.back().head;
  }

  void grow(std::size_t min_bytes) {
    const std::size_t chunk =
        min_bytes > kChunkBytes ? min_bytes : kChunkBytes;
    chunks_.push_back(std::make_unique<std::byte[]>(chunk));
    bump_ = chunks_.back().get();
    bump_left_ = chunk;
    ++stats_.chunks;
    stats_.reserved_bytes += chunk;
  }

  struct Bucket {
    std::size_t size;
    FreeNode* head;
  };

  std::vector<Bucket> buckets_;
  std::vector<std::unique_ptr<std::byte[]>> chunks_;
  std::byte* bump_ = nullptr;
  std::size_t bump_left_ = 0;
  Stats stats_;
};

/// Minimal C++17 allocator over a SlabArena, for node-based containers
/// (std::map/std::set). Single-element allocations — the only kind a
/// node container makes — go through the arena; bulk allocations fall
/// back to the heap so the type is safe to reuse elsewhere. The arena
/// pointer is salient state: two allocators compare equal iff they
/// share an arena, and the arena must outlive every container bound to
/// it.
template <typename T>
class SlabAllocator {
 public:
  using value_type = T;

  static_assert(alignof(T) <= alignof(std::max_align_t),
                "SlabArena serves fundamental alignment only");

  explicit SlabAllocator(SlabArena* arena) : arena_(arena) {}
  template <typename U>
  SlabAllocator(const SlabAllocator<U>& other)  // NOLINT(*-explicit-*)
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    if (n == 1) return static_cast<T*>(arena_->acquire(sizeof(T)));
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    if (n == 1) {
      arena_->release(p, sizeof(T));
      return;
    }
    ::operator delete(p);
  }

  [[nodiscard]] SlabArena* arena() const { return arena_; }

  friend bool operator==(const SlabAllocator& a, const SlabAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const SlabAllocator& a, const SlabAllocator& b) {
    return a.arena_ != b.arena_;
  }

 private:
  SlabArena* arena_;
};

}  // namespace thinair::runtime
