#include "runtime/result_sink.h"

#include <charconv>
#include <cstdio>
#include <ostream>
#include <stdexcept>

#include "util/table.h"

namespace thinair::runtime {

namespace {

// Minimal JSON string escaping for names that flow into NDJSON keys and
// values — scenarios are an extension point, so labels are not trusted to
// be quote-free.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string format_double(double value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{})
    throw std::runtime_error("format_double: to_chars failed");
  return std::string(buf, ptr);
}

ResultSink::ResultSink(std::string scenario_name, std::ostream* ndjson)
    : scenario_name_(std::move(scenario_name)), ndjson_(ndjson) {}

void ResultSink::push(const CaseSpec& spec, const CaseResult& result) {
  std::lock_guard lock(mu_);
  if (spec.index < next_emit_ || pending_.contains(spec.index))
    throw std::logic_error("ResultSink: case pushed twice");
  if (spec.index != next_emit_) {
    pending_.emplace(spec.index, std::make_pair(spec, result));
    return;
  }
  emit(spec, result);
  ++next_emit_;
  // Drain the contiguous run that was waiting on this case.
  for (auto it = pending_.begin();
       it != pending_.end() && it->first == next_emit_;
       it = pending_.erase(it), ++next_emit_) {
    emit(it->second.first, it->second.second);
  }
}

void ResultSink::emit(const CaseSpec& spec, const CaseResult& result) {
  if (ndjson_ != nullptr) {
    std::ostream& os = *ndjson_;
    os << "{\"scenario\":\"" << json_escape(scenario_name_)
       << "\",\"index\":" << spec.index << ",\"seed\":" << spec.seed;
    if (!result.group.empty())
      os << ",\"group\":\"" << json_escape(result.group) << "\"";
    os << ",\"params\":{";
    for (std::size_t i = 0; i < spec.params.size(); ++i) {
      if (i > 0) os << ",";
      os << "\"" << json_escape(spec.params[i].name)
         << "\":" << format_double(spec.params[i].value);
    }
    os << "},\"metrics\":{";
    for (std::size_t i = 0; i < result.metrics.size(); ++i) {
      if (i > 0) os << ",";
      os << "\"" << json_escape(result.metrics[i].name)
         << "\":" << format_double(result.metrics[i].value);
    }
    os << "}}\n";
  }

  GroupSummary* group = nullptr;
  for (GroupSummary& g : groups_)
    if (g.group == result.group) group = &g;
  if (group == nullptr) {
    groups_.push_back(GroupSummary{result.group, 0, {}});
    group = &groups_.back();
  }
  ++group->cases;
  for (const Metric& m : result.metrics) group->metrics[m.name].add(m.value);
}

void ResultSink::mark_truncated(std::size_t run_cases,
                                std::size_t plan_cases) {
  std::lock_guard lock(mu_);
  if (run_cases >= plan_cases)
    throw std::logic_error("ResultSink::mark_truncated: nothing truncated");
  truncated_plan_cases_ = plan_cases;
}

void ResultSink::finish() {
  std::lock_guard lock(mu_);
  if (!pending_.empty())
    throw std::logic_error("ResultSink::finish: missing case " +
                           std::to_string(next_emit_));
  if (ndjson_ != nullptr) {
    // A truncated run's per-group aggregates cover partial groups;
    // stamp that into the stream so downstream readers cannot mistake
    // the file for a full sweep. Full runs emit no footer, keeping
    // their bytes identical to pre-footer versions.
    if (truncated_plan_cases_ != 0)
      *ndjson_ << "{\"scenario\":\"" << json_escape(scenario_name_)
               << "\",\"truncated\":true,\"cases\":" << next_emit_
               << ",\"plan_cases\":" << truncated_plan_cases_ << "}\n";
    ndjson_->flush();
  }
}

std::size_t ResultSink::cases() const {
  std::lock_guard lock(mu_);
  return next_emit_;
}

void ResultSink::print_summary(std::ostream& os) const {
  std::lock_guard lock(mu_);
  util::Table t({"group", "metric", "cases", "min", "mean", "stddev", "max"});
  for (const GroupSummary& g : groups_) {
    for (const auto& [name, summary] : g.metrics) {
      t.add_row({g.group.empty() ? "(all)" : g.group, name,
                 std::to_string(g.cases), util::fmt(summary.min(), 4),
                 util::fmt(summary.mean(), 4),
                 summary.count() > 1 ? util::fmt(summary.stddev(), 4) : "-",
                 util::fmt(summary.max(), 4)});
    }
  }
  t.print(os);
  if (truncated_plan_cases_ != 0)
    os << "\ntruncated: summaries cover the first " << next_emit_ << " of "
       << truncated_plan_cases_ << " cases (group rows are partial)\n";
}

}  // namespace thinair::runtime
