#include "runtime/result_sink.h"

#include <charconv>
#include <chrono>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "util/table.h"

namespace thinair::runtime {

namespace {

// Minimal JSON string escaping for names that flow into NDJSON keys and
// values — scenarios are an extension point, so labels are not trusted to
// be quote-free.
void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Fixed-width \u00XX by hand: printf-family formatting is banned
          // in the NDJSON path (locale-sensitive; thinair_lint
          // ndjson-float-format), and control chars only need two digits.
          static constexpr char kHex[] = "0123456789abcdef";
          const unsigned char u = static_cast<unsigned char>(c);
          out += "\\u00";
          out += kHex[u >> 4];
          out += kHex[u & 0xf];
        } else {
          out += c;
        }
    }
  }
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{})
    throw std::runtime_error("ResultSink: integer to_chars failed");
  out.append(buf, ptr);
}

void append_double(std::string& out, double value) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc{})
    throw std::runtime_error("format_double: to_chars failed");
  out.append(buf, ptr);
}

// Unique-forever sink ids let a thread cache its claimed ring without
// any dangling-pointer hazard when sink storage is reused: a dead
// sink's id never matches again.
std::uint64_t next_sink_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

struct ProducerCache {
  std::uint64_t sink_id = 0;
  void* ring = nullptr;
};
thread_local ProducerCache tl_producer;

}  // namespace

std::string format_double(double value) {
  std::string out;
  append_double(out, value);
  return out;
}

ResultSink::ResultSink(std::string scenario_name, std::ostream* ndjson)
    : scenario_name_(std::move(scenario_name)),
      ndjson_(ndjson),
      sink_id_(next_sink_id()) {
  buffer_.reserve(kFlushBytes + 4096);
  drainer_ = std::thread([this] { drain_loop(); });
}

ResultSink::~ResultSink() {
  stop_drainer();
  for (std::atomic<Ring*>& slot : rings_)
    delete slot.load(std::memory_order_relaxed);
}

ResultSink::Ring& ResultSink::producer_ring() {
  if (tl_producer.sink_id == sink_id_)
    return *static_cast<Ring*>(tl_producer.ring);
  // First push from this thread: claim a slot lock-free and publish the
  // ring to the drainer. Happens once per (thread, sink) — allocation
  // here is setup cost, not steady-state push cost.
  const std::size_t slot = n_rings_.fetch_add(1, std::memory_order_relaxed);
  if (slot >= kMaxProducers)
    throw std::logic_error("ResultSink: too many producer threads");
  Ring* ring = new Ring(kRingCapacity);
  rings_[slot].store(ring, std::memory_order_release);
  tl_producer = {sink_id_, ring};
  return *ring;
}

void ResultSink::push(const CaseSpec& spec, const CaseResult& result) {
  producer_ring().push(Record{spec, result});
}

bool ResultSink::drain_rings() {
  bool progress = false;
  const std::size_t n =
      std::min(n_rings_.load(std::memory_order_acquire), kMaxProducers);
  for (std::size_t i = 0; i < n; ++i) {
    Ring* ring = rings_[i].load(std::memory_order_acquire);
    if (ring == nullptr) continue;  // claimed but not yet published
    Record record;
    while (ring->try_pop(record)) {
      progress = true;
      try {
        accept(std::move(record));
      } catch (...) {
        // First error wins; keep consuming so producers never block on
        // a full ring behind a dead drainer. finish() rethrows.
        if (!drain_error_) drain_error_ = std::current_exception();
      }
    }
  }
  return progress;
}

void ResultSink::drain_loop() {
  // The drainer thread owns the reorder/format/summary state for its
  // whole lifetime; the RoleLock makes that claim visible to the
  // analysis (finish() reclaims the role only after joining us).
  util::RoleLock role(&drainer_role_);
  int idle = 0;
  for (;;) {
    if (drain_rings()) {
      idle = 0;
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) {
      // Producers are done (finish() happens-after every push): one
      // final sweep empties whatever raced with the stop flag.
      while (drain_rings()) {
      }
      return;
    }
    // Spin briefly for low latency, then back off to sleeping so an
    // idle drainer does not burn a core under long-running cases.
    if (++idle < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
}

void ResultSink::accept(Record&& record) {
  if (drain_error_) return;  // already failed: discard, keep rings moving
  const std::size_t index = record.spec.index;
  if (index < next_emit_ || pending_.contains(index))
    throw std::logic_error("ResultSink: case pushed twice");
  if (index != next_emit_) {
    pending_.emplace(index, std::move(record));
    if (pending_.size() > peak_pending_) peak_pending_ = pending_.size();
    return;
  }
  emit(record.spec, record.result);
  ++next_emit_;
  // Drain the contiguous run that was waiting on this case.
  for (auto it = pending_.begin();
       it != pending_.end() && it->first == next_emit_;
       it = pending_.erase(it), ++next_emit_) {
    emit(it->second.spec, it->second.result);
  }
  emitted_.store(next_emit_, std::memory_order_relaxed);
}

void ResultSink::emit(const CaseSpec& spec, const CaseResult& result) {
  if (ndjson_ != nullptr) {
    std::string& out = buffer_;
    out += "{\"scenario\":\"";
    append_escaped(out, scenario_name_);
    out += "\",\"index\":";
    append_u64(out, spec.index);
    out += ",\"seed\":";
    append_u64(out, spec.seed);
    if (!result.group.empty()) {
      out += ",\"group\":\"";
      append_escaped(out, result.group);
      out += "\"";
    }
    out += ",\"params\":{";
    for (std::size_t i = 0; i < spec.params.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"";
      append_escaped(out, spec.params[i].name);
      out += "\":";
      append_double(out, spec.params[i].value);
    }
    out += "},\"metrics\":{";
    for (std::size_t i = 0; i < result.metrics.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"";
      append_escaped(out, result.metrics[i].name);
      out += "\":";
      append_double(out, result.metrics[i].value);
    }
    out += "}}\n";
    if (out.size() >= kFlushBytes) flush_buffer();
  }

  GroupSummary* group = nullptr;
  for (GroupSummary& g : groups_)
    if (g.group == result.group) group = &g;
  if (group == nullptr) {
    groups_.push_back(GroupSummary{result.group, 0, {}});
    group = &groups_.back();
  }
  ++group->cases;
  for (const Metric& m : result.metrics) group->metrics[m.name].add(m.value);
}

void ResultSink::flush_buffer() {
  if (ndjson_ != nullptr && !buffer_.empty()) {
    ndjson_->write(buffer_.data(),
                   static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
}

void ResultSink::stop_drainer() {
  if (!drainer_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  drainer_.join();
}

void ResultSink::mark_truncated(std::size_t run_cases,
                                std::size_t plan_cases) {
  if (run_cases >= plan_cases)
    throw std::logic_error("ResultSink::mark_truncated: nothing truncated");
  truncated_plan_cases_ = plan_cases;
}

void ResultSink::finish() {
  stop_drainer();
  // The drainer is joined: this thread is the sole owner of its state
  // from here on, so it may claim the role.
  util::RoleLock role(&drainer_role_);
  // Lines emitted before a contract violation still reach the stream —
  // matching the old eager-writing sink's behaviour on error paths.
  flush_buffer();
  if (drain_error_) std::rethrow_exception(drain_error_);
  if (!pending_.empty()) {
    std::string what = "ResultSink::finish: missing case ";
    append_u64(what, next_emit_);
    throw std::logic_error(what);
  }
  if (ndjson_ != nullptr) {
    // A truncated run's per-group aggregates cover partial groups;
    // stamp that into the stream so downstream readers cannot mistake
    // the file for a full sweep. Full runs emit no footer, keeping
    // their bytes identical to pre-footer versions.
    if (truncated_plan_cases_ != 0) {
      std::string& out = buffer_;
      out += "{\"scenario\":\"";
      append_escaped(out, scenario_name_);
      out += "\",\"truncated\":true,\"cases\":";
      append_u64(out, next_emit_);
      out += ",\"plan_cases\":";
      append_u64(out, truncated_plan_cases_);
      out += "}\n";
      flush_buffer();
    }
    ndjson_->flush();
  }
}

std::size_t ResultSink::cases() const {
  return emitted_.load(std::memory_order_relaxed);
}

void ResultSink::print_summary(std::ostream& os) const {
  // Valid only post-finish (documented contract): the caller is the sole
  // owner of the drainer state, so claim the role for the walk.
  util::RoleLock role(&drainer_role_);
  util::Table t({"group", "metric", "cases", "min", "mean", "stddev", "max"});
  for (const GroupSummary& g : groups_) {
    for (const auto& [name, summary] : g.metrics) {
      std::string cases_str;
      append_u64(cases_str, g.cases);
      t.add_row({g.group.empty() ? "(all)" : g.group, name,
                 std::move(cases_str), util::fmt(summary.min(), 4),
                 util::fmt(summary.mean(), 4),
                 summary.count() > 1 ? util::fmt(summary.stddev(), 4) : "-",
                 util::fmt(summary.max(), 4)});
    }
  }
  t.print(os);
  if (truncated_plan_cases_ != 0)
    os << "\ntruncated: summaries cover the first " << next_emit_ << " of "
       << truncated_plan_cases_ << " cases (group rows are partial)\n";
}

}  // namespace thinair::runtime
