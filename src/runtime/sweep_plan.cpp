#include "runtime/sweep_plan.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace thinair::runtime {

double param(const Params& params, const std::string& name) {
  for (const Param& p : params)
    if (p.name == name) return p.value;
  throw std::out_of_range("param: no parameter named '" + name + "'");
}

void SweepPlan::add_axis(std::string name, std::vector<double> values) {
  if (!points_.empty())
    throw std::logic_error("SweepPlan: cannot mix axes and explicit points");
  if (values.empty())
    throw std::invalid_argument("SweepPlan: axis '" + name + "' is empty");
  for (const Axis& a : axes_)
    if (a.name == name)
      throw std::invalid_argument("SweepPlan: duplicate axis '" + name + "'");
  axes_.push_back(Axis{std::move(name), std::move(values)});
}

void SweepPlan::add_point(Params point) {
  if (!axes_.empty())
    throw std::logic_error("SweepPlan: cannot mix axes and explicit points");
  points_.push_back(std::move(point));
}

std::size_t SweepPlan::size() const {
  if (!points_.empty()) return points_.size();
  if (axes_.empty()) return 0;
  std::size_t n = 1;
  for (const Axis& a : axes_) n *= a.values.size();
  return n;
}

Params SweepPlan::at(std::size_t index) const {
  if (index >= size()) throw std::out_of_range("SweepPlan::at: index");
  if (!points_.empty()) return points_[index];

  // Mixed-radix decode, last axis fastest-varying.
  Params out(axes_.size());
  for (std::size_t i = axes_.size(); i-- > 0;) {
    const Axis& a = axes_[i];
    out[i] = Param{a.name, a.values[index % a.values.size()]};
    index /= a.values.size();
  }
  return out;
}

std::vector<SweepPlan::AxisSummary> SweepPlan::axis_summaries() const {
  std::vector<AxisSummary> out;
  if (!axes_.empty()) {
    for (const Axis& a : axes_) {
      std::set<double> distinct(a.values.begin(), a.values.end());
      out.push_back({a.name, {distinct.begin(), distinct.end()}});
    }
    return out;
  }
  std::vector<std::set<double>> distinct;
  for (const Params& point : points_) {
    for (const Param& p : point) {
      auto it = std::find_if(out.begin(), out.end(), [&](const AxisSummary& s) {
        return s.name == p.name;
      });
      if (it == out.end()) {
        out.push_back({p.name, {}});
        distinct.emplace_back();
        it = out.end() - 1;
      }
      distinct[static_cast<std::size_t>(it - out.begin())].insert(p.value);
    }
  }
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i].values.assign(distinct[i].begin(), distinct[i].end());
  return out;
}

}  // namespace thinair::runtime
