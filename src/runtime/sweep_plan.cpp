#include "runtime/sweep_plan.h"

#include <stdexcept>

namespace thinair::runtime {

double param(const Params& params, const std::string& name) {
  for (const Param& p : params)
    if (p.name == name) return p.value;
  throw std::out_of_range("param: no parameter named '" + name + "'");
}

void SweepPlan::add_axis(std::string name, std::vector<double> values) {
  if (!points_.empty())
    throw std::logic_error("SweepPlan: cannot mix axes and explicit points");
  if (values.empty())
    throw std::invalid_argument("SweepPlan: axis '" + name + "' is empty");
  for (const Axis& a : axes_)
    if (a.name == name)
      throw std::invalid_argument("SweepPlan: duplicate axis '" + name + "'");
  axes_.push_back(Axis{std::move(name), std::move(values)});
}

void SweepPlan::add_point(Params point) {
  if (!axes_.empty())
    throw std::logic_error("SweepPlan: cannot mix axes and explicit points");
  points_.push_back(std::move(point));
}

std::size_t SweepPlan::size() const {
  if (!points_.empty()) return points_.size();
  if (axes_.empty()) return 0;
  std::size_t n = 1;
  for (const Axis& a : axes_) n *= a.values.size();
  return n;
}

Params SweepPlan::at(std::size_t index) const {
  if (index >= size()) throw std::out_of_range("SweepPlan::at: index");
  if (!points_.empty()) return points_[index];

  // Mixed-radix decode, last axis fastest-varying.
  Params out(axes_.size());
  for (std::size_t i = axes_.size(); i-- > 0;) {
    const Axis& a = axes_[i];
    out[i] = Param{a.name, a.values[index % a.values.size()]};
    index /= a.values.size();
  }
  return out;
}

}  // namespace thinair::runtime
