#pragma once
// The declarative scenario-composition API.
//
// A ScenarioSpec describes a whole scenario — channel model, topology,
// session parameters, estimator axis, baseline selection and sweep grid —
// as plain data. compile() turns a spec into a runnable Scenario whose
// case function is pure given its CaseSpec, so every spec inherits the
// engine's determinism contract (byte-identical NDJSON at any thread
// count) for free. The three built-ins (fig1/fig2/headline) are spec
// literals registered through this same path, and the text front-end
// (runtime/spec_parse.h) parses/serialises specs so `thinair run --spec
// FILE` and `thinair run NAME --set key=value` compose scenarios without
// recompiling.
//
// The case grid a spec compiles to, in canonical axis order (first axis
// slowest-varying, matching SweepPlan):
//
//   estimator  — one value per estimator.series entry (present when > 1)
//   n          — group size, one value per topology.n entry
//   p          — iid erasure probability (placement-free models, when
//                sweep.p is non-empty)
//   placement  — testbed placement index (placement-sweep mode)
//   rep        — Monte-Carlo repetition (when sweep.repeats > 1)
//
// Every axis value is carried as a double in the NDJSON params object;
// seeds derive from (master_seed, case index) exactly as for hand-written
// scenarios.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "channel/factory.h"
#include "channel/testbed_channel.h"
#include "core/estimator.h"
#include "core/pool.h"
#include "net/medium.h"
#include "packet/types.h"
#include "runtime/scenario.h"

namespace thinair::runtime {

/// Which channel the cases run over. The placement-free kinds (iid,
/// per-link) attach n terminals plus Eve to a flat Medium; the testbed
/// kind builds the Sec. 4 geometric channel from a placement.
struct ChannelSpec {
  channel::ChannelModelKind model = channel::ChannelModelKind::kTestbed;
  /// kIid: the fixed erasure probability — ignored when sweep.p supplies
  /// a "p" axis.
  double iid_p = 0.2;
  /// kPerLink: probability of unlisted links, plus the link table.
  double default_p = 0.0;
  std::vector<channel::LinkErasure> links;
  /// kTestbed: the full geometric config, incl. the interference toggle.
  channel::TestbedChannel::Config testbed;

  friend bool operator==(const ChannelSpec&, const ChannelSpec&) = default;
};

/// Who stands where. Two modes for the testbed channel: a placement
/// *sweep* (cells empty — enumerate every possible positioning per n,
/// optionally capped) or an *explicit* placement (cells non-empty — one
/// case per estimator series/repeat, n = cells.size()). Placement-free
/// channels only read n_values.
struct TopologySpec {
  /// Group sizes ("n" axis). Testbed placements require n in [2, 8].
  std::vector<std::size_t> n_values = {3, 4, 5, 6, 7, 8};
  /// Placement cap per n in sweep mode (0 = every possible positioning);
  /// a per-estimator-series cap overrides it.
  std::size_t max_placements = 0;
  /// Explicit placement: one grid cell per terminal, plus Eve's cell.
  std::vector<std::size_t> cells;
  std::size_t eve_cell = 8;
  /// Optional explicit coordinates (metres) overriding the cell centres
  /// of the explicit placement; aligned with `cells`. When `cells` is
  /// empty, cells are derived from the positions via the grid.
  std::vector<channel::Vec2> positions;
  std::optional<channel::Vec2> eve_position;

  friend bool operator==(const TopologySpec&, const TopologySpec&) = default;
};

/// The core::SessionConfig binding (estimator aside — that is an axis).
struct SessionSpec {
  std::size_t x_packets = 90;  // N per round; 90 spreads over all 9 patterns
  std::size_t payload_bytes = packet::kPaperPayloadBytes;  // 100 B
  std::size_t rounds = 0;      // 0 = one round per terminal
  bool rotate_alice = true;    // Sec. 3.2's worst-case avoidance
  core::PoolStrategy pool = core::PoolStrategy::kClassShared;

  friend bool operator==(const SessionSpec&, const SessionSpec&) = default;
};

/// One value of the estimator axis. Figure 2 sweeps three of these with
/// different placement caps per series (its estimator axis is dependent).
struct EstimatorSeries {
  core::EstimatorKind kind = core::EstimatorKind::kGeometry;
  /// Per-series placement cap (0 = topology.max_placements).
  std::size_t max_placements = 0;

  friend bool operator==(const EstimatorSeries&,
                         const EstimatorSeries&) = default;
};

/// The estimator axis plus the knobs shared by every series.
struct EstimatorAxis {
  std::vector<EstimatorSeries> series = {{}};
  std::size_t k_antennas = 1;    // kKSubset / kGeometry
  double fraction_delta = 0.30;  // kFraction
  double safety = 0.75;          // fraction/geometry safety margin

  friend bool operator==(const EstimatorAxis&, const EstimatorAxis&) = default;
};

/// Extra sweep axes beyond the structural ones.
struct SweepSpec {
  /// iid erasure-probability axis (placement-free models only).
  std::vector<double> p_values;
  /// Monte-Carlo repetitions per grid point ("rep" axis when > 1); each
  /// repetition is an independent case with its own derived seed.
  std::size_t repeats = 1;
  /// Generic axis over any numeric spec key, by the same dotted path
  /// --set uses: key = "session.x_packets", values = [30, 60, 90] makes
  /// the sweep's slowest axis "session.x_packets", compiling one spec
  /// variant per value. Targets under sweep.* and run.* are rejected
  /// (self-reference / execution pinning). Both empty = no key axis;
  /// setting one without the other is a compile error.
  std::string key;
  std::vector<double> values;

  friend bool operator==(const SweepSpec&, const SweepSpec&) = default;
};

/// Which algorithm(s) each case runs.
enum class Baseline : std::uint8_t {
  kGroup,    // the paper's group algorithm
  kUnicast,  // the pair-wise baseline
  kBoth,     // both, seeded independently (Figure 1's comparison)
};

/// Which metrics each case emits.
enum class MetricSet : std::uint8_t {
  kSession,     // reliability / efficiency / secret_rate_bps
  kEfficiency,  // data-plane efficiency (the Figure-1 quantity)
};

[[nodiscard]] std::string_view to_string(Baseline b);
[[nodiscard]] std::string_view to_string(MetricSet m);
[[nodiscard]] std::optional<Baseline> baseline_from_string(
    std::string_view name);
[[nodiscard]] std::optional<MetricSet> metric_set_from_string(
    std::string_view name);

struct OutputSpec {
  Baseline baseline = Baseline::kGroup;
  MetricSet metrics = MetricSet::kSession;
  /// Emit the paper's closed forms next to the simulation (iid channel +
  /// kEfficiency only): Figure 1's group_analytic / unicast_analytic.
  bool analytic = false;

  friend bool operator==(const OutputSpec&, const OutputSpec&) = default;
};

/// Execution pinning, so a spec file alone fully determines a run: when
/// set, these supply the master seed and thread count `thinair run` uses
/// unless the corresponding CLI flag is given explicitly (flags win —
/// they are the more deliberate act). Unset keys keep today's behaviour
/// (CLI defaults). Threads do not affect output bytes (the engine's
/// determinism contract); pinning them is about reproducing *timing*
/// conditions, pinning the seed about reproducing the data.
struct RunSpec {
  std::optional<std::uint64_t> seed;
  std::optional<std::size_t> threads;  // 0 = hardware concurrency

  friend bool operator==(const RunSpec&, const RunSpec&) = default;
};

/// A whole scenario as data. Field-assign or chain the fluent setters;
/// compile() validates everything at once.
struct ScenarioSpec {
  std::string name;
  std::string description;
  ChannelSpec channel;
  TopologySpec topology;
  SessionSpec session;
  EstimatorAxis estimator;
  SweepSpec sweep;
  OutputSpec output;
  RunSpec run;
  net::MacParams mac;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;

  // ------------------------------------------------------ fluent builder
  ScenarioSpec& with_name(std::string n);
  ScenarioSpec& with_description(std::string d);
  /// Channel selection. on_iid keeps sweep.p as the axis when set later.
  ScenarioSpec& on_iid(double p);
  ScenarioSpec& on_per_link(double default_p,
                            std::vector<channel::LinkErasure> links);
  ScenarioSpec& on_testbed(channel::TestbedChannel::Config config = {});
  ScenarioSpec& with_n(std::vector<std::size_t> values);
  ScenarioSpec& with_n_range(std::size_t lo, std::size_t hi);
  ScenarioSpec& with_placement_cap(std::size_t cap);
  ScenarioSpec& at_cells(std::vector<std::size_t> cells, std::size_t eve_cell);
  /// Replace the estimator axis with one series.
  ScenarioSpec& with_estimator(core::EstimatorKind kind,
                               std::size_t max_placements = 0);
  /// Append one series to the estimator axis.
  ScenarioSpec& add_estimator(core::EstimatorKind kind,
                              std::size_t max_placements = 0);
  ScenarioSpec& with_session(SessionSpec s);
  ScenarioSpec& with_pool(core::PoolStrategy pool);
  ScenarioSpec& sweep_p(std::vector<double> values);
  /// Sweep any numeric spec key by dotted path (see SweepSpec::key).
  ScenarioSpec& sweep_key(std::string key, std::vector<double> values);
  ScenarioSpec& with_repeats(std::size_t repeats);
  ScenarioSpec& with_baseline(Baseline b);
  ScenarioSpec& with_metrics(MetricSet m);
  ScenarioSpec& with_analytic(bool on = true);
};

/// Validate `spec` and compile it into a runnable Scenario. The returned
/// Scenario carries a copy of the spec (Scenario::spec), keeps the
/// engine's purity contract, and throws nothing at run time that compile
/// could have caught. Throws std::invalid_argument with a
/// "<name>: <problem>" message on an inconsistent spec.
[[nodiscard]] Scenario compile(const ScenarioSpec& spec);

/// compile() + ScenarioRegistry::add in one step.
void register_spec(const ScenarioSpec& spec);

}  // namespace thinair::runtime
