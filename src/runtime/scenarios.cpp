#include "runtime/scenarios.h"

#include "core/estimator.h"
#include "runtime/scenario_spec.h"

namespace thinair::runtime {

ScenarioSpec fig1_spec() {
  // Figure 1: data-plane efficiency of the group and unicast algorithms vs
  // the erasure probability, Monte-Carlo on the i.i.d. broadcast channel
  // with the oracle estimator, next to the paper's closed forms.
  SessionSpec session;
  session.x_packets = 200;
  session.payload_bytes = 100;
  session.rounds = 6;
  return ScenarioSpec{}
      .with_name(kFig1Scenario)
      .with_description(
          "Figure 1: group vs unicast efficiency over erasure probability "
          "(analytic + Monte-Carlo, oracle estimator, i.i.d. channel)")
      .on_iid(0.1)
      .sweep_p({0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9})
      .with_n({2, 3, 6, 10})
      .with_session(session)
      .with_estimator(core::EstimatorKind::kOracle)
      .with_baseline(Baseline::kBoth)
      .with_metrics(MetricSet::kEfficiency)
      .with_analytic();
}

ScenarioSpec fig2_spec() {
  // The three Figure-2 estimator series with the same per-series placement
  // caps the bench uses. The estimator axis is dependent (placement cap
  // varies per series), which the spec's per-series caps express directly.
  return ScenarioSpec{}
      .with_name(kFig2Scenario)
      .with_description(
          "Figure 2: reliability vs group size on the 3x3-cell testbed "
          "(geometry / leave-one-out / slot-fraction estimators)")
      .on_testbed()
      .with_n_range(3, 8)
      .with_estimator(core::EstimatorKind::kGeometry, 60)
      .add_estimator(core::EstimatorKind::kLeaveOneOut, 24)
      .add_estimator(core::EstimatorKind::kSlotFraction, 24);
}

ScenarioSpec headline_spec() {
  return ScenarioSpec{}
      .with_name(kHeadlineScenario)
      .with_description(
          "Sec. 4 headline sweep: every possible positioning of n terminals "
          "and Eve, n = 3..8, geometry estimator")
      .on_testbed()
      .with_n_range(3, 8)
      .with_estimator(core::EstimatorKind::kGeometry);
}

void register_builtin_scenarios() {
  ScenarioRegistry& registry = ScenarioRegistry::instance();
  if (registry.find(kFig1Scenario) != nullptr) return;  // already done
  register_spec(fig1_spec());
  register_spec(fig2_spec());
  register_spec(headline_spec());
}

}  // namespace thinair::runtime
