#include "runtime/scenarios.h"

#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "analysis/efficiency.h"
#include "channel/erasure.h"
#include "core/session.h"
#include "core/unicast.h"
#include "net/medium.h"
#include "runtime/engine.h"
#include "runtime/seed.h"
#include "testbed/experiment.h"
#include "testbed/placements.h"

namespace thinair::runtime {

namespace {

// ------------------------------------------------------------------ fig1
// Figure 1: data-plane efficiency of the group and unicast algorithms vs
// the erasure probability, Monte-Carlo on the i.i.d. broadcast channel
// with the oracle estimator, next to the paper's closed forms.

double mc_efficiency(bool unicast, double p, std::size_t n,
                     std::uint64_t seed) {
  core::SessionConfig cfg;
  cfg.x_packets_per_round = 200;
  cfg.payload_bytes = 100;
  cfg.rounds = 6;
  cfg.estimator.kind = core::EstimatorKind::kOracle;
  cfg.pool_strategy = core::PoolStrategy::kClassShared;
  cfg.arena = &worker_arena();  // reset per case by the engine

  channel::IidErasure ch(p);
  net::Medium medium(ch, channel::Rng(seed));
  for (std::size_t i = 0; i < n; ++i)
    medium.attach(packet::NodeId{static_cast<std::uint16_t>(i)},
                  net::Role::kTerminal);
  medium.attach(packet::NodeId{static_cast<std::uint16_t>(n)},
                net::Role::kEavesdropper);
  if (unicast) {
    core::UnicastSession session(medium, cfg);
    return session.run().data_efficiency(cfg.payload_bytes);
  }
  core::GroupSecretSession session(medium, cfg);
  return session.run().data_efficiency(cfg.payload_bytes);
}

Scenario fig1_scenario() {
  Scenario s;
  s.name = kFig1Scenario;
  s.description =
      "Figure 1: group vs unicast efficiency over erasure probability "
      "(analytic + Monte-Carlo, oracle estimator, i.i.d. channel)";
  s.plan = [] {
    SweepPlan plan;
    plan.add_axis("n", {2, 3, 6, 10});
    plan.add_axis("p", {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9});
    return plan;
  };
  s.run = [](const CaseSpec& spec) {
    const auto n = static_cast<std::size_t>(param(spec.params, "n"));
    const double p = param(spec.params, "p");
    CaseResult result;
    result.group = "n=" + std::to_string(n);
    result.metrics = {
        {"group_analytic", analysis::group_efficiency(p, n)},
        {"group_sim", mc_efficiency(false, p, n, spec.seed)},
        {"unicast_analytic", analysis::unicast_efficiency(p, n)},
        {"unicast_sim",
         mc_efficiency(true, p, n, derive_seed2(spec.seed, spec.index))},
    };
    return result;
  };
  return s;
}

// ------------------------------------------------------- fig2 / headline
// Testbed experiments: one case = one (estimator, n, placement) triple,
// full Alice rotation, scored for reliability/efficiency/secret rate.

// Placement sets are immutable per (n, cap); enumerate each once instead
// of per case — the headline sweep alone would otherwise rebuild a
// 630-element placement vector 1971 times inside the parallel hot path.
const std::vector<testbed::Placement>& cached_placements(
    std::size_t n, std::size_t max_placements) {
  static std::mutex mu;
  static std::map<std::pair<std::size_t, std::size_t>,
                  std::vector<testbed::Placement>>
      cache;
  std::lock_guard lock(mu);
  auto [it, inserted] = cache.try_emplace({n, max_placements});
  if (inserted) it->second = testbed::sample_placements(n, max_placements);
  return it->second;
}

testbed::ExperimentResult run_testbed_case(core::EstimatorKind kind,
                                           std::size_t n,
                                           std::size_t placement_index,
                                           std::size_t max_placements,
                                           std::uint64_t seed) {
  testbed::ExperimentConfig cfg;
  cfg.placement = cached_placements(n, max_placements)[placement_index];
  cfg.session.estimator.kind = kind;
  cfg.session.arena = &worker_arena();  // reset per case by the engine
  cfg.seed = seed;
  return run_experiment(cfg);
}

CaseResult testbed_case_result(std::string group,
                               const testbed::ExperimentResult& r) {
  CaseResult result;
  result.group = std::move(group);
  result.metrics = {
      {"reliability", r.reliability()},
      {"efficiency", r.efficiency()},
      {"secret_rate_bps", r.secret_rate_bps()},
  };
  return result;
}

Scenario fig2_scenario() {
  // The three Figure-2 estimator series with the same per-series
  // placement caps the bench uses. The estimator axis is dependent
  // (placement cap varies), so the plan is an explicit point list.
  struct Series {
    core::EstimatorKind kind;
    double code;
    std::size_t max_placements;
  };
  static constexpr Series kSeries[] = {
      {core::EstimatorKind::kGeometry, 0, 60},
      {core::EstimatorKind::kLeaveOneOut, 1, 24},
      {core::EstimatorKind::kSlotFraction, 2, 24},
  };

  Scenario s;
  s.name = kFig2Scenario;
  s.description =
      "Figure 2: reliability vs group size on the 3x3-cell testbed "
      "(geometry / leave-one-out / slot-fraction estimators)";
  s.plan = [] {
    SweepPlan plan;
    for (const Series& series : kSeries) {
      for (std::size_t n = 3; n <= 8; ++n) {
        const std::size_t count =
            cached_placements(n, series.max_placements).size();
        for (std::size_t p = 0; p < count; ++p)
          plan.add_point({{"estimator", series.code},
                          {"n", static_cast<double>(n)},
                          {"placement", static_cast<double>(p)}});
      }
    }
    return plan;
  };
  s.run = [](const CaseSpec& spec) {
    const auto code = static_cast<std::size_t>(param(spec.params, "estimator"));
    const auto n = static_cast<std::size_t>(param(spec.params, "n"));
    const auto p = static_cast<std::size_t>(param(spec.params, "placement"));
    const Series& series = kSeries[code];
    const testbed::ExperimentResult r =
        run_testbed_case(series.kind, n, p, series.max_placements, spec.seed);
    return testbed_case_result(std::string(core::to_string(series.kind)) +
                                   " n=" + std::to_string(n),
                               r);
  };
  return s;
}

Scenario headline_scenario() {
  Scenario s;
  s.name = kHeadlineScenario;
  s.description =
      "Sec. 4 headline sweep: every possible positioning of n terminals "
      "and Eve, n = 3..8, geometry estimator";
  s.plan = [] {
    SweepPlan plan;
    for (std::size_t n = 3; n <= 8; ++n)
      for (std::size_t p = 0; p < testbed::placement_count(n); ++p)
        plan.add_point({{"n", static_cast<double>(n)},
                        {"placement", static_cast<double>(p)}});
    return plan;
  };
  s.run = [](const CaseSpec& spec) {
    const auto n = static_cast<std::size_t>(param(spec.params, "n"));
    const auto p = static_cast<std::size_t>(param(spec.params, "placement"));
    const testbed::ExperimentResult r = run_testbed_case(
        core::EstimatorKind::kGeometry, n, p, /*max_placements=*/0, spec.seed);
    return testbed_case_result("n=" + std::to_string(n), r);
  };
  return s;
}

}  // namespace

void register_builtin_scenarios() {
  ScenarioRegistry& registry = ScenarioRegistry::instance();
  if (registry.find(kFig1Scenario) != nullptr) return;  // already done
  registry.add(fig1_scenario());
  registry.add(fig2_scenario());
  registry.add(headline_scenario());
}

}  // namespace thinair::runtime
