#pragma once
// Scenario descriptors and the registry behind `thinair list` / `thinair
// run`. A Scenario captures a runnable configuration family as data: a
// name, a SweepPlan factory enumerating its cases, and a case function
// mapping (index, derived seed, parameter point) to named metrics. The
// engine (runtime/engine.h) owns scheduling; a scenario's case function
// must be pure given its CaseSpec — no shared mutable state, no clocks,
// no global RNG — which is what lets the runtime promise thread-count
// invariance.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/sweep_plan.h"

namespace thinair::runtime {

/// One case of a sweep, fully determined before execution starts.
struct CaseSpec {
  std::size_t index = 0;    // position in the plan, the identity of the case
  std::uint64_t seed = 0;   // derive_seed(master_seed, index)
  Params params;            // plan.at(index)
};

/// One named metric value produced by a case.
struct Metric {
  std::string name;
  double value = 0.0;
};

struct CaseResult {
  /// Aggregation key; cases sharing a group are folded into one summary
  /// row (e.g. "n=3"). Empty = one global group.
  std::string group;
  std::vector<Metric> metrics;
};

/// Value of the metric called `name`; throws std::out_of_range if absent.
[[nodiscard]] double metric(const CaseResult& result, const std::string& name);

struct ScenarioSpec;  // runtime/scenario_spec.h

struct Scenario {
  std::string name;
  std::string description;
  std::function<SweepPlan()> plan;
  std::function<CaseResult(const CaseSpec&)> run;
  /// The declarative source this scenario was compiled from, when it came
  /// through compile() (runtime/scenario_spec.h); null for hand-written
  /// scenarios. What `thinair describe` dumps and `--set` overrides.
  std::shared_ptr<const ScenarioSpec> spec;
};

/// Process-wide scenario registry. Registration is not thread-safe (do it
/// at startup); lookup is read-only afterwards. Returned pointers stay
/// valid across later add() calls (scenarios are heap-owned).
class ScenarioRegistry {
 public:
  [[nodiscard]] static ScenarioRegistry& instance();

  /// Throws std::invalid_argument on a duplicate or empty name.
  void add(Scenario scenario);

  /// nullptr when absent.
  [[nodiscard]] const Scenario* find(const std::string& name) const;

  /// All scenarios, sorted by name.
  [[nodiscard]] std::vector<const Scenario*> list() const;

 private:
  std::vector<std::unique_ptr<Scenario>> scenarios_;
};

/// Register the built-in paper scenarios (fig1, fig2, headline, ...).
/// Idempotent; called by the CLI and tests.
void register_builtin_scenarios();

}  // namespace thinair::runtime
