#pragma once
// A SweepPlan describes every case of a parameter sweep as data: either a
// cartesian product of named axes ("n in {2,3,6,10}" x "p in {0.1..0.9}")
// or an explicit list of parameter points (for grids whose axes are
// dependent, e.g. "placement index < placement_count(n)").
//
// Cases are addressed by a dense index in [0, size()); the plan decodes an
// index to its parameter point on demand (mixed-radix for axes), so even
// million-case sweeps cost no memory to enumerate. The index order is the
// canonical order: the first axis added varies slowest. Case seeds derive
// from this index (runtime/seed.h), which is what makes sweeps
// thread-count-invariant.

#include <cstdint>
#include <string>
#include <vector>

namespace thinair::runtime {

/// One named parameter value. Everything is carried as double — parameter
/// grids here are sizes, probabilities and enum codes, all exactly
/// representable.
struct Param {
  std::string name;
  double value = 0.0;

  friend bool operator==(const Param&, const Param&) = default;
};

using Params = std::vector<Param>;

/// Value of `name` in `params`; throws std::out_of_range when absent.
[[nodiscard]] double param(const Params& params, const std::string& name);

class SweepPlan {
 public:
  /// Append a cartesian axis. Throws if `values` is empty, the name is
  /// duplicated, or explicit points were already added.
  void add_axis(std::string name, std::vector<double> values);

  /// Append one explicit case. Throws if axes were already added.
  void add_point(Params point);

  /// Number of cases: product of axis sizes, or the point count.
  [[nodiscard]] std::size_t size() const;

  /// Parameter point of case `index` (mixed-radix decode for axes).
  [[nodiscard]] Params at(std::size_t index) const;

  [[nodiscard]] bool empty() const { return size() == 0; }

  /// One parameter axis of the plan, summarised for display (`thinair
  /// list`): the distinct values it takes, in value order.
  struct AxisSummary {
    std::string name;
    std::vector<double> values;  // distinct, ascending

    [[nodiscard]] double min() const { return values.front(); }
    [[nodiscard]] double max() const { return values.back(); }
  };

  /// Per-parameter summaries in axis order (cartesian plans) or
  /// first-appearance order (explicit-point plans, where the distinct
  /// values are collected across every point — dependent axes like
  /// fig2's per-series placement counts report their union).
  [[nodiscard]] std::vector<AxisSummary> axis_summaries() const;

 private:
  struct Axis {
    std::string name;
    std::vector<double> values;
  };
  std::vector<Axis> axes_;
  std::vector<Params> points_;
};

}  // namespace thinair::runtime
