#include "runtime/scenario_spec.h"

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "analysis/efficiency.h"
#include "core/session.h"
#include "core/unicast.h"
#include "net/medium.h"
#include "runtime/engine.h"
#include "runtime/result_sink.h"  // format_double — sweep.key overrides
#include "runtime/seed.h"
#include "runtime/spec_parse.h"   // apply_override — sweep.key variants
#include "testbed/experiment.h"
#include "testbed/placements.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace thinair::runtime {

// ------------------------------------------------------------- enum names

std::string_view to_string(Baseline b) {
  switch (b) {
    case Baseline::kGroup: return "group";
    case Baseline::kUnicast: return "unicast";
    case Baseline::kBoth: return "both";
  }
  return "unknown";
}

std::string_view to_string(MetricSet m) {
  switch (m) {
    case MetricSet::kSession: return "session";
    case MetricSet::kEfficiency: return "efficiency";
  }
  return "unknown";
}

std::optional<Baseline> baseline_from_string(std::string_view name) {
  for (const Baseline b : {Baseline::kGroup, Baseline::kUnicast, Baseline::kBoth})
    if (name == to_string(b)) return b;
  return std::nullopt;
}

std::optional<MetricSet> metric_set_from_string(std::string_view name) {
  for (const MetricSet m : {MetricSet::kSession, MetricSet::kEfficiency})
    if (name == to_string(m)) return m;
  return std::nullopt;
}

// --------------------------------------------------------- fluent builder

ScenarioSpec& ScenarioSpec::with_name(std::string n) {
  name = std::move(n);
  return *this;
}
ScenarioSpec& ScenarioSpec::with_description(std::string d) {
  description = std::move(d);
  return *this;
}
ScenarioSpec& ScenarioSpec::on_iid(double p) {
  channel.model = channel::ChannelModelKind::kIid;
  channel.iid_p = p;
  return *this;
}
ScenarioSpec& ScenarioSpec::on_per_link(
    double default_p, std::vector<channel::LinkErasure> links) {
  channel.model = channel::ChannelModelKind::kPerLink;
  channel.default_p = default_p;
  channel.links = std::move(links);
  return *this;
}
ScenarioSpec& ScenarioSpec::on_testbed(channel::TestbedChannel::Config config) {
  channel.model = channel::ChannelModelKind::kTestbed;
  channel.testbed = config;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_n(std::vector<std::size_t> values) {
  topology.n_values = std::move(values);
  return *this;
}
ScenarioSpec& ScenarioSpec::with_n_range(std::size_t lo, std::size_t hi) {
  topology.n_values.clear();
  for (std::size_t n = lo; n <= hi; ++n) topology.n_values.push_back(n);
  return *this;
}
ScenarioSpec& ScenarioSpec::with_placement_cap(std::size_t cap) {
  topology.max_placements = cap;
  return *this;
}
ScenarioSpec& ScenarioSpec::at_cells(std::vector<std::size_t> cells,
                                     std::size_t eve_cell) {
  topology.cells = std::move(cells);
  topology.eve_cell = eve_cell;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_estimator(core::EstimatorKind kind,
                                           std::size_t max_placements) {
  estimator.series = {{kind, max_placements}};
  return *this;
}
ScenarioSpec& ScenarioSpec::add_estimator(core::EstimatorKind kind,
                                          std::size_t max_placements) {
  estimator.series.push_back({kind, max_placements});
  return *this;
}
ScenarioSpec& ScenarioSpec::with_session(SessionSpec s) {
  session = s;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_pool(core::PoolStrategy pool) {
  session.pool = pool;
  return *this;
}
ScenarioSpec& ScenarioSpec::sweep_p(std::vector<double> values) {
  sweep.p_values = std::move(values);
  return *this;
}
ScenarioSpec& ScenarioSpec::sweep_key(std::string key,
                                      std::vector<double> values) {
  sweep.key = std::move(key);
  sweep.values = std::move(values);
  return *this;
}
ScenarioSpec& ScenarioSpec::with_repeats(std::size_t repeats) {
  sweep.repeats = repeats;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_baseline(Baseline b) {
  output.baseline = b;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_metrics(MetricSet m) {
  output.metrics = m;
  return *this;
}
ScenarioSpec& ScenarioSpec::with_analytic(bool on) {
  output.analytic = on;
  return *this;
}

namespace {

// Placement sets are immutable per (n, cap); enumerate each once instead
// of per case — the headline sweep alone would otherwise rebuild a
// 630-element placement vector 1971 times inside the parallel hot path.
const std::vector<testbed::Placement>& cached_placements(
    std::size_t n, std::size_t max_placements) {
  struct Cache {
    util::Mutex mu;
    std::map<std::pair<std::size_t, std::size_t>,
             std::vector<testbed::Placement>>
        map THINAIR_GUARDED_BY(mu);
  };
  static Cache cache;
  util::MutexLock lock(&cache.mu);
  auto [it, inserted] = cache.map.try_emplace({n, max_placements});
  if (inserted) it->second = testbed::sample_placements(n, max_placements);
  return it->second;
}

struct Compiled;

/// One value of the sweep.key axis: the value itself plus the spec
/// variant it compiles to (the base spec with `key = value` applied and
/// the key axis cleared).
struct KeyVariant {
  double value = 0.0;
  std::shared_ptr<const Compiled> compiled;
};

/// Everything the plan and case functions need, resolved once at compile
/// time and shared (immutably) by both closures.
struct Compiled {
  ScenarioSpec spec;
  bool testbed = false;          // channel.model == kTestbed
  bool placement_sweep = false;  // testbed without an explicit placement
  bool estimator_axis = false;   // > 1 estimator series
  bool p_axis = false;           // sweep.p non-empty (iid)
  bool rep_axis = false;         // sweep.repeats > 1
  testbed::Placement explicit_placement;  // when testbed && !placement_sweep
  /// sweep.key axis (empty = absent). When present, every other field
  /// above is unused: the plan and case functions delegate to the
  /// per-value variants, with the key as the slowest axis.
  std::string key;
  std::vector<KeyVariant> variants;
};

[[noreturn]] void fail(const ScenarioSpec& spec, const std::string& what) {
  throw std::invalid_argument(
      (spec.name.empty() ? std::string("spec") : spec.name) + ": " + what);
}

std::size_t series_cap(const Compiled& c, const EstimatorSeries& series) {
  return series.max_placements != 0 ? series.max_placements
                                    : c.spec.topology.max_placements;
}

Compiled validate(const ScenarioSpec& spec) {
  Compiled c;
  c.spec = spec;
  if (spec.name.empty()) fail(spec, "name is empty");
  if (spec.estimator.series.empty()) fail(spec, "estimator.series is empty");
  if (spec.sweep.repeats < 1) fail(spec, "sweep.repeats must be >= 1");
  if (spec.estimator.k_antennas < 1)
    fail(spec, "estimator.k_antennas must be >= 1");
  if (spec.session.x_packets < 1) fail(spec, "session.x_packets must be >= 1");
  if (spec.session.payload_bytes < 1)
    fail(spec, "session.payload_bytes must be >= 1");

  const bool iid = spec.channel.model == channel::ChannelModelKind::kIid;
  c.testbed = spec.channel.model == channel::ChannelModelKind::kTestbed;
  c.estimator_axis = spec.estimator.series.size() > 1;
  c.rep_axis = spec.sweep.repeats > 1;

  if (!spec.sweep.p_values.empty()) {
    if (!iid) fail(spec, "sweep.p requires channel.model = iid");
    for (const double p : spec.sweep.p_values)
      if (!(p >= 0.0 && p <= 1.0)) fail(spec, "sweep.p value outside [0, 1]");
    c.p_axis = true;
  }
  if (iid && !(spec.channel.iid_p >= 0.0 && spec.channel.iid_p <= 1.0))
    fail(spec, "channel.p outside [0, 1]");
  if (spec.channel.model == channel::ChannelModelKind::kPerLink) {
    if (!(spec.channel.default_p >= 0.0 && spec.channel.default_p <= 1.0))
      fail(spec, "channel.default_p outside [0, 1]");
    for (const channel::LinkErasure& link : spec.channel.links)
      if (!(link.p >= 0.0 && link.p <= 1.0))
        fail(spec, "channel.links probability outside [0, 1]");
  }
  if (spec.output.analytic &&
      (!iid || spec.output.metrics != MetricSet::kEfficiency))
    fail(spec,
         "output.analytic requires channel.model = iid and output.metrics = "
         "efficiency");
  if (!c.testbed)
    for (const EstimatorSeries& series : spec.estimator.series)
      if (series.kind == core::EstimatorKind::kGeometry)
        fail(spec, "estimator 'geometry' requires channel.model = testbed");

  const bool explicit_topology =
      !spec.topology.cells.empty() || !spec.topology.positions.empty();
  if (explicit_topology && !c.testbed)
    fail(spec, "topology.cells/positions require channel.model = testbed");

  if (c.testbed && explicit_topology) {
    std::vector<std::size_t> cells = spec.topology.cells;
    std::size_t eve_cell = spec.topology.eve_cell;
    const channel::CellGrid& grid = spec.channel.testbed.grid;
    if (cells.empty())  // derive the logical cells from the coordinates
      for (const channel::Vec2 pos : spec.topology.positions)
        cells.push_back(grid.cell_of(pos).value);
    if (spec.topology.eve_position.has_value())
      eve_cell = grid.cell_of(*spec.topology.eve_position).value;
    if (!spec.topology.positions.empty() &&
        spec.topology.positions.size() != cells.size())
      fail(spec, "topology.positions must align with topology.cells");
    if (cells.size() < 2 || cells.size() > 8)
      fail(spec, "explicit placement needs 2 to 8 terminals");
    testbed::Placement placement;
    for (const std::size_t cell : cells)
      placement.terminal_cells.push_back(channel::CellIndex{cell});
    placement.eve_cell = channel::CellIndex{eve_cell};
    if (!placement.valid())
      fail(spec,
           "explicit placement is invalid (one distinct cell per node, Eve "
           "in her own)");
    c.explicit_placement = std::move(placement);
  } else {
    if (spec.topology.n_values.empty()) fail(spec, "topology.n is empty");
    for (const std::size_t n : spec.topology.n_values) {
      if (n < 2) fail(spec, "topology.n values must be >= 2");
      if (c.testbed && n > 8)
        fail(spec, "topology.n values outside [2, 8] (testbed placements)");
      // Node ids are 16-bit and Eve takes id n, so n + 1 ids must fit —
      // caught here so the contract "compile throws nothing at run time
      // it could have caught" holds for giant placement-free sweeps.
      if (n > 65534) fail(spec, "topology.n values must be <= 65534");
    }
    c.placement_sweep = c.testbed;
  }
  return c;
}

/// validate() plus the sweep.key expansion: a keyed spec compiles one
/// variant per value (the base spec with the override applied and the
/// key axis cleared), each recursively validated; everything else goes
/// straight to validate().
Compiled make_compiled(const ScenarioSpec& spec) {
  if (spec.sweep.key.empty() && spec.sweep.values.empty())
    return validate(spec);
  if (spec.sweep.key.empty() || spec.sweep.values.empty())
    fail(spec, "sweep.key and sweep.values must be set together");

  const std::string& key = spec.sweep.key;
  // sweep.* would self-reference (and sweep.p already is an axis); run.*
  // is execution pinning, not physics; name/description are not numeric.
  if (key.starts_with("sweep.") || key.starts_with("run.") ||
      key == "name" || key == "description")
    fail(spec, "sweep.key cannot target '" + key + "'");

  Compiled c;
  c.spec = spec;
  c.key = key;
  for (std::size_t i = 0; i < spec.sweep.values.size(); ++i) {
    const double value = spec.sweep.values[i];
    for (std::size_t j = 0; j < i; ++j)
      if (spec.sweep.values[j] == value)
        fail(spec, "sweep.values has duplicate " + format_double(value));
    ScenarioSpec variant = spec;
    variant.sweep.key.clear();
    variant.sweep.values.clear();
    try {
      // The same path/value syntax as `--set key=value`, so exactly the
      // keys an override can reach are sweepable — and a value the key
      // cannot hold (90.5 packets) fails here, at compile time.
      apply_override(variant, key, format_double(value));
    } catch (const SpecError& e) {
      fail(spec, "sweep.key: " + std::string(e.what()));
    }
    c.variants.push_back(
        {value, std::make_shared<const Compiled>(make_compiled(variant))});
  }
  return c;
}

SweepPlan make_plan(const Compiled& c) {
  const ScenarioSpec& spec = c.spec;
  SweepPlan plan;

  if (!c.variants.empty()) {
    // Key axis slowest: variant-major concatenation as explicit points
    // (per-variant grids may differ in shape — the key can retarget
    // topology.n), each point led by the key parameter.
    for (const KeyVariant& kv : c.variants) {
      const SweepPlan sub = make_plan(*kv.compiled);
      for (std::size_t i = 0; i < sub.size(); ++i) {
        Params point;
        point.push_back({c.key, kv.value});
        for (Param& p : sub.at(i)) point.push_back(std::move(p));
        plan.add_point(std::move(point));
      }
    }
    return plan;
  }

  if (c.placement_sweep) {
    // Dependent grid (placement count varies with n and the series cap):
    // explicit points, series-major then n then placement then repetition.
    for (std::size_t si = 0; si < spec.estimator.series.size(); ++si) {
      const std::size_t cap = series_cap(c, spec.estimator.series[si]);
      for (const std::size_t n : spec.topology.n_values) {
        const std::size_t count = cached_placements(n, cap).size();
        for (std::size_t pl = 0; pl < count; ++pl) {
          for (std::size_t rep = 0; rep < spec.sweep.repeats; ++rep) {
            Params point;
            if (c.estimator_axis)
              point.push_back({"estimator", static_cast<double>(si)});
            point.push_back({"n", static_cast<double>(n)});
            point.push_back({"placement", static_cast<double>(pl)});
            if (c.rep_axis) point.push_back({"rep", static_cast<double>(rep)});
            plan.add_point(std::move(point));
          }
        }
      }
    }
    return plan;
  }

  if (c.testbed) {  // explicit placement: one case per (series, repetition)
    for (std::size_t si = 0; si < spec.estimator.series.size(); ++si) {
      for (std::size_t rep = 0; rep < spec.sweep.repeats; ++rep) {
        Params point;
        if (c.estimator_axis)
          point.push_back({"estimator", static_cast<double>(si)});
        if (c.rep_axis) point.push_back({"rep", static_cast<double>(rep)});
        plan.add_point(std::move(point));
      }
    }
    return plan;
  }

  // Placement-free models: a pure cartesian grid.
  if (c.estimator_axis) {
    std::vector<double> codes;
    for (std::size_t si = 0; si < spec.estimator.series.size(); ++si)
      codes.push_back(static_cast<double>(si));
    plan.add_axis("estimator", std::move(codes));
  }
  std::vector<double> ns;
  for (const std::size_t n : spec.topology.n_values)
    ns.push_back(static_cast<double>(n));
  plan.add_axis("n", std::move(ns));
  if (c.p_axis) plan.add_axis("p", spec.sweep.p_values);
  if (c.rep_axis) {
    std::vector<double> reps;
    for (std::size_t rep = 0; rep < spec.sweep.repeats; ++rep)
      reps.push_back(static_cast<double>(rep));
    plan.add_axis("rep", std::move(reps));
  }
  return plan;
}

core::SessionConfig make_session_config(const Compiled& c,
                                        const EstimatorSeries& series) {
  const ScenarioSpec& spec = c.spec;
  core::SessionConfig cfg;
  cfg.x_packets_per_round = spec.session.x_packets;
  cfg.payload_bytes = spec.session.payload_bytes;
  cfg.rounds = spec.session.rounds;
  cfg.rotate_alice = spec.session.rotate_alice;
  cfg.pool_strategy = spec.session.pool;
  cfg.estimator.kind = series.kind;
  cfg.estimator.k_antennas = spec.estimator.k_antennas;
  cfg.estimator.fraction_delta = spec.estimator.fraction_delta;
  cfg.estimator.loo_safety = spec.estimator.safety;
  cfg.arena = &worker_arena();  // reset per case by the engine
  return cfg;
}

core::SessionResult run_testbed_session(const Compiled& c,
                                        const EstimatorSeries& series,
                                        const testbed::Placement& placement,
                                        std::uint64_t seed, bool unicast) {
  const ScenarioSpec& spec = c.spec;
  testbed::ExperimentConfig exp;
  exp.placement = placement;
  exp.terminal_positions = spec.topology.positions;
  exp.eve_position = spec.topology.eve_position;
  exp.session = make_session_config(c, series);
  exp.channel = spec.channel.testbed;
  exp.mac = spec.mac;
  exp.seed = seed;
  exp.group_pool = &worker_pools().group_sessions;
  exp.unicast_pool = &worker_pools().unicast_sessions;
  return (unicast ? run_unicast_experiment(exp) : run_experiment(exp)).session;
}

core::SessionResult run_flat_session(const Compiled& c,
                                     const EstimatorSeries& series,
                                     std::size_t n, double p,
                                     std::uint64_t seed, bool unicast) {
  const ScenarioSpec& spec = c.spec;
  const std::unique_ptr<channel::ErasureModel> model =
      channel::make_erasure_model(spec.channel.model, p, spec.channel.default_p,
                                  spec.channel.links);
  net::SimMedium medium(*model, channel::Rng(seed), spec.mac);
  for (std::size_t i = 0; i < n; ++i)
    medium.attach(packet::NodeId{static_cast<std::uint16_t>(i)},
                  net::Role::kTerminal);
  medium.attach(packet::NodeId{static_cast<std::uint16_t>(n)},
                net::Role::kEavesdropper);
  const core::SessionConfig cfg = make_session_config(c, series);
  // Sessions come from the worker's free-list pool: acquire() is
  // equivalent to construction (reset() contract), so bytes are pinned
  // to the unpooled path by the golden suites.
  WorkerPools& pools = worker_pools();
  if (unicast) {
    const auto session = pools.unicast_sessions.acquire_scoped(medium, cfg);
    return session->run();
  }
  const auto session = pools.group_sessions.acquire_scoped(medium, cfg);
  return session->run();
}

void append_session_metrics(std::vector<Metric>& metrics,
                            const core::SessionResult& r,
                            const std::string& prefix) {
  metrics.push_back({prefix + "reliability", r.reliability()});
  metrics.push_back({prefix + "efficiency", r.efficiency()});
  metrics.push_back({prefix + "secret_rate_bps", r.secret_rate_bps()});
}

CaseResult run_case(const Compiled& c, const CaseSpec& cs) {
  if (!c.variants.empty()) {
    // Dispatch on the key parameter this case carries. The value went
    // into the plan verbatim, so exact double comparison is right.
    const double value = param(cs.params, c.key);
    for (const KeyVariant& kv : c.variants)
      if (kv.value == value) return run_case(*kv.compiled, cs);
    throw std::logic_error(c.spec.name + ": case " + std::to_string(cs.index) +
                           " carries unknown " + c.key + " value");
  }
  const ScenarioSpec& spec = c.spec;
  const std::size_t si =
      c.estimator_axis
          ? static_cast<std::size_t>(param(cs.params, "estimator"))
          : 0;
  const EstimatorSeries& series = spec.estimator.series[si];
  const bool both = spec.output.baseline == Baseline::kBoth;
  const bool unicast_first = spec.output.baseline == Baseline::kUnicast;

  std::size_t n = 0;
  double p = spec.channel.iid_p;
  // First (or only) algorithm runs on the case seed; in both-mode the
  // second run draws from an independent stream so the comparison is
  // uncorrelated (Figure 1's construction).
  core::SessionResult first, second;
  if (c.testbed) {
    const testbed::Placement& placement =
        c.placement_sweep
            ? cached_placements(
                  static_cast<std::size_t>(param(cs.params, "n")),
                  series_cap(c, series))
                  [static_cast<std::size_t>(param(cs.params, "placement"))]
            : c.explicit_placement;
    n = placement.n_terminals();
    first = run_testbed_session(c, series, placement, cs.seed, unicast_first);
    if (both)
      second = run_testbed_session(c, series, placement,
                                   derive_seed2(cs.seed, cs.index), true);
  } else {
    n = static_cast<std::size_t>(param(cs.params, "n"));
    if (c.p_axis) p = param(cs.params, "p");
    first = run_flat_session(c, series, n, p, cs.seed, unicast_first);
    if (both)
      second = run_flat_session(c, series, n, p,
                                derive_seed2(cs.seed, cs.index), true);
  }

  CaseResult result;
  result.group = (c.estimator_axis
                      ? std::string(core::to_string(series.kind)) + " n="
                      : std::string("n=")) +
                 std::to_string(n);

  if (spec.output.metrics == MetricSet::kEfficiency) {
    const std::size_t payload = spec.session.payload_bytes;
    if (both) {
      if (spec.output.analytic)
        result.metrics.push_back(
            {"group_analytic", analysis::group_efficiency(p, n)});
      result.metrics.push_back({"group_sim", first.data_efficiency(payload)});
      if (spec.output.analytic)
        result.metrics.push_back(
            {"unicast_analytic", analysis::unicast_efficiency(p, n)});
      result.metrics.push_back(
          {"unicast_sim", second.data_efficiency(payload)});
    } else {
      if (spec.output.analytic)
        result.metrics.push_back(
            {"analytic", unicast_first ? analysis::unicast_efficiency(p, n)
                                       : analysis::group_efficiency(p, n)});
      result.metrics.push_back({"efficiency", first.data_efficiency(payload)});
    }
  } else {
    if (both) {
      append_session_metrics(result.metrics, first, "group_");
      append_session_metrics(result.metrics, second, "unicast_");
    } else {
      append_session_metrics(result.metrics, first, "");
    }
  }
  return result;
}

}  // namespace

Scenario compile(const ScenarioSpec& spec) {
  const auto c = std::make_shared<const Compiled>(make_compiled(spec));
  Scenario s;
  s.name = spec.name;
  s.description = spec.description;
  s.spec = std::make_shared<const ScenarioSpec>(spec);
  s.plan = [c] { return make_plan(*c); };
  s.run = [c](const CaseSpec& cs) { return run_case(*c, cs); };
  return s;
}

void register_spec(const ScenarioSpec& spec) {
  ScenarioRegistry::instance().add(compile(spec));
}

}  // namespace thinair::runtime
