#include "runtime/spec_parse.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "runtime/engine.h"       // kMaxRunThreads
#include "runtime/result_sink.h"  // format_double

namespace thinair::runtime {

namespace {

// ----------------------------------------------------------- lexical bits

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

/// Strip a trailing comment, respecting double-quoted strings.
std::string_view strip_comment(std::string_view line) {
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (ch == '\\' && quoted) {
      ++i;  // skip the escaped character
    } else if (ch == '"') {
      quoted = !quoted;
    } else if (ch == '#' && !quoted) {
      return line.substr(0, i);
    }
  }
  return line;
}

[[noreturn]] void fail(const std::string& path, const std::string& what) {
  throw SpecError(path + ": " + what);
}

double parse_number(const std::string& path, std::string_view text) {
  double out = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    fail(path, "expected a number, got '" + std::string(text) + "'");
  return out;
}

std::size_t parse_integer(const std::string& path, std::string_view text) {
  std::size_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size())
    fail(path, "expected a non-negative integer, got '" + std::string(text) +
                   "'");
  return out;
}

bool parse_bool(const std::string& path, std::string_view text) {
  if (text == "true" || text == "on") return true;
  if (text == "false" || text == "off") return false;
  fail(path, "expected true/false (or on/off), got '" + std::string(text) +
                 "'");
}

/// A quoted string with \" \\ \n escapes, or a bare word.
std::string parse_string(const std::string& path, std::string_view text) {
  if (text.empty() || text.front() != '"') return std::string(text);
  if (text.size() < 2 || text.back() != '"')
    fail(path, "unterminated string " + std::string(text));
  std::string out;
  for (std::size_t i = 1; i + 1 < text.size(); ++i) {
    if (text[i] != '\\') {
      out += text[i];
      continue;
    }
    if (++i + 1 >= text.size())
      fail(path, "dangling escape in " + std::string(text));
    switch (text[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'n': out += '\n'; break;
      default:
        fail(path, std::string("unknown escape '\\") + text[i] + "'");
    }
  }
  return out;
}

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    if (ch == '\n') {
      out += "\\n";
      continue;
    }
    out += ch;
  }
  return out + "\"";
}

/// Split "[a, b, c]" (or a single bare item) into item texts, respecting
/// quotes. "[]" yields an empty list.
std::vector<std::string> split_items(const std::string& path,
                                     std::string_view text) {
  std::vector<std::string> items;
  if (text.empty() || text.front() != '[') {
    items.emplace_back(text);
    return items;
  }
  if (text.back() != ']') fail(path, "unterminated list " + std::string(text));
  text = text.substr(1, text.size() - 2);
  std::size_t start = 0;
  bool quoted = false;
  bool any = false;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i < text.size() && text[i] == '\\' && quoted) {
      ++i;
    } else if (i < text.size() && text[i] == '"') {
      quoted = !quoted;
    } else if (i == text.size() || (text[i] == ',' && !quoted)) {
      const std::string_view item = trim(text.substr(start, i - start));
      if (!item.empty()) {
        items.emplace_back(item);
        any = true;
      } else if (any || i < text.size()) {
        fail(path, "empty list item");
      }
      start = i + 1;
    }
  }
  return items;
}

/// Doubles with range sugar: each item is a number or "lo:hi:step"
/// (inclusive, step > 0) or "lo..hi" (integers, step 1).
// A range bigger than this is a typo ('3..4000000000'), and catching it
// here turns a multi-GB allocation into a diagnostic.
constexpr double kMaxRangeValues = 1 << 20;

std::vector<double> parse_number_list(const std::string& path,
                                      std::string_view text) {
  std::vector<double> out;
  const auto check_count = [&](const std::string& item, double count) {
    if (count > kMaxRangeValues)
      fail(path, "range '" + item + "' expands to more than " +
                     std::to_string(static_cast<std::size_t>(
                         kMaxRangeValues)) +
                     " values");
  };
  for (const std::string& item : split_items(path, text)) {
    if (const std::size_t dots = item.find(".."); dots != std::string::npos &&
                                                  item.find(':') ==
                                                      std::string::npos) {
      const double lo = parse_number(path, item.substr(0, dots));
      const double hi = parse_number(path, item.substr(dots + 2));
      if (lo != std::floor(lo) || hi != std::floor(hi) || hi < lo)
        fail(path, "bad range '" + item + "' (want integers lo..hi)");
      check_count(item, hi - lo + 1);
      for (double v = lo; v <= hi; v += 1.0) out.push_back(v);
      continue;
    }
    const std::size_t c1 = item.find(':');
    if (c1 != std::string::npos) {
      const std::size_t c2 = item.find(':', c1 + 1);
      if (c2 == std::string::npos)
        fail(path, "bad range '" + item + "' (want lo:hi:step)");
      const double lo = parse_number(path, item.substr(0, c1));
      const double hi = parse_number(path, item.substr(c1 + 1, c2 - c1 - 1));
      const double step = parse_number(path, item.substr(c2 + 1));
      if (!(step > 0.0) || hi < lo)
        fail(path, "bad range '" + item + "' (want lo <= hi, step > 0)");
      check_count(item, (hi - lo) / step + 1);
      // lo + i*step (not repeated +=) so error never accumulates, with a
      // half-step inclusive bound and a clamp so 0.1:0.9:0.1 ends exactly
      // on 0.9 and 0:1:0.05 never overshoots a probability check.
      for (std::size_t i = 0;; ++i) {
        const double v = lo + static_cast<double>(i) * step;
        if (v > hi + step / 2) break;
        out.push_back(std::min(v, hi));
      }
      continue;
    }
    out.push_back(parse_number(path, item));
  }
  return out;
}

std::vector<std::size_t> parse_integer_list(const std::string& path,
                                            std::string_view text) {
  std::vector<std::size_t> out;
  for (const double v : parse_number_list(path, text)) {
    if (v < 0.0 || v != std::floor(v))
      fail(path, "expected non-negative integers");
    out.push_back(static_cast<std::size_t>(v));
  }
  return out;
}

void check_probability(const std::string& path, double p) {
  if (!(p >= 0.0 && p <= 1.0))
    fail(path, format_double(p) + " outside [0, 1]");
}

void check_cell(const std::string& path, std::size_t cell) {
  if (cell >= channel::CellGrid::kCells)
    fail(path, "cell " + std::to_string(cell) + " outside [0, 8]");
}

// ------------------------------------------------------- composite fields

/// "kind" or "kind:cap", e.g. "geometry:60".
EstimatorSeries parse_series_item(const std::string& path,
                                  const std::string& text) {
  const std::string item = parse_string(path, text);
  const std::size_t colon = item.find(':');
  EstimatorSeries series;
  const std::string kind_name = item.substr(0, colon);
  const auto kind = core::estimator_kind_from_string(kind_name);
  if (!kind.has_value()) {
    std::string known;
    for (const std::string_view name : core::estimator_kind_names())
      known += (known.empty() ? "" : ", ") + std::string(name);
    fail(path, "unknown estimator '" + kind_name + "' (one of: " + known + ")");
  }
  series.kind = *kind;
  if (colon != std::string::npos)
    series.max_placements = parse_integer(path, item.substr(colon + 1));
  return series;
}

std::string serialize_series_item(const EstimatorSeries& series) {
  std::string out(core::to_string(series.kind));
  if (series.max_placements != 0) {
    // Append piecewise: `out += ":" + std::to_string(...)` trips gcc 12's
    // -Wrestrict false positive (PR 105329) once inlined into the
    // serializer, and the warning set is promoted to errors in CI.
    out += ':';
    out += std::to_string(series.max_placements);
  }
  return quote(out);
}

/// "tx>rx:p", e.g. "0>1:0.25".
channel::LinkErasure parse_link_item(const std::string& path,
                                     const std::string& text) {
  const std::string item = parse_string(path, text);
  const std::size_t gt = item.find('>');
  const std::size_t colon = item.find(':', gt == std::string::npos ? 0 : gt);
  if (gt == std::string::npos || colon == std::string::npos)
    fail(path, "bad link '" + item + "' (want \"tx>rx:p\", e.g. \"0>1:0.25\")");
  channel::LinkErasure link;
  link.tx = static_cast<std::uint16_t>(
      parse_integer(path, item.substr(0, gt)));
  link.rx = static_cast<std::uint16_t>(
      parse_integer(path, item.substr(gt + 1, colon - gt - 1)));
  link.p = parse_number(path, item.substr(colon + 1));
  check_probability(path, link.p);
  return link;
}

std::string serialize_link_item(const channel::LinkErasure& link) {
  return quote(std::to_string(link.tx) + ">" + std::to_string(link.rx) + ":" +
               format_double(link.p));
}

std::vector<channel::Vec2> parse_positions(const std::string& path,
                                           std::string_view text) {
  const std::vector<double> flat = parse_number_list(path, text);
  if (flat.size() % 2 != 0)
    fail(path,
         "expected an even number of coordinates (x1, y1, x2, y2, ...)");
  std::vector<channel::Vec2> out;
  for (std::size_t i = 0; i < flat.size(); i += 2)
    out.push_back({flat[i], flat[i + 1]});
  return out;
}

// --------------------------------------------------------- the key table

const std::vector<std::string>& section_names() {
  static const std::vector<std::string> names = {
      "channel", "topology", "session", "estimator",
      "sweep",   "output",   "run",     "mac"};
  return names;
}

/// Assign one (section, key) = value onto the spec. `path` is the dotted
/// name used in error messages ("channel.p").
void set_field(ScenarioSpec& spec, const std::string& section,
               const std::string& key, std::string_view value) {
  const std::string path = section.empty() ? key : section + "." + key;
  const auto unknown_key = [&]() -> void {
    fail(path, "unknown key");
  };

  if (section.empty()) {
    if (key == "name") {
      spec.name = parse_string(path, value);
    } else if (key == "description") {
      spec.description = parse_string(path, value);
    } else {
      fail(key, "unknown key (top level has only name and description)");
    }
    return;
  }

  if (section == "channel") {
    ChannelSpec& ch = spec.channel;
    if (key == "model") {
      const std::string name = parse_string(path, value);
      const auto kind = channel::channel_model_from_string(name);
      if (!kind.has_value()) {
        std::string known;
        for (const std::string_view k : channel::channel_model_names())
          known += (known.empty() ? "" : ", ") + std::string(k);
        fail(path, "unknown model '" + name + "' (one of: " + known + ")");
      }
      ch.model = *kind;
    } else if (key == "p") {
      ch.iid_p = parse_number(path, value);
      check_probability(path, ch.iid_p);
    } else if (key == "default_p") {
      ch.default_p = parse_number(path, value);
      check_probability(path, ch.default_p);
    } else if (key == "links") {
      ch.links.clear();
      for (const std::string& item : split_items(path, value))
        ch.links.push_back(parse_link_item(path, item));
    } else if (key == "area_m2") {
      const double area = parse_number(path, value);
      if (!(area > 0.0)) fail(path, "area must be > 0");
      ch.testbed.grid = channel::CellGrid(area);
    } else if (key == "interference") {
      ch.testbed.interference_enabled = parse_bool(path, value);
    } else if (key == "tx_power_dbm") {
      ch.testbed.pathloss.tx_power_dbm = parse_number(path, value);
    } else if (key == "ref_loss_db") {
      ch.testbed.pathloss.ref_loss_db = parse_number(path, value);
    } else if (key == "pathloss_exponent") {
      ch.testbed.pathloss.exponent = parse_number(path, value);
    } else if (key == "min_distance_m") {
      ch.testbed.pathloss.min_distance_m = parse_number(path, value);
    } else if (key == "jammer_power_dbm") {
      ch.testbed.interferer.tx_power_dbm = parse_number(path, value);
    } else if (key == "sidelobe_rejection_db") {
      ch.testbed.interferer.sidelobe_rejection_db = parse_number(path, value);
    } else if (key == "noise_floor_dbm") {
      ch.testbed.sinr.noise_floor_dbm = parse_number(path, value);
    } else if (key == "per_threshold_db") {
      ch.testbed.sinr.per_threshold_db = parse_number(path, value);
    } else if (key == "per_scale_db") {
      ch.testbed.sinr.per_scale_db = parse_number(path, value);
    } else if (key == "loss_floor") {
      ch.testbed.sinr.floor = parse_number(path, value);
      check_probability(path, ch.testbed.sinr.floor);
    } else if (key == "loss_ceiling") {
      ch.testbed.sinr.ceiling = parse_number(path, value);
      check_probability(path, ch.testbed.sinr.ceiling);
    } else {
      unknown_key();
    }
    return;
  }

  if (section == "topology") {
    TopologySpec& topo = spec.topology;
    if (key == "n") {
      topo.n_values = parse_integer_list(path, value);
    } else if (key == "max_placements") {
      topo.max_placements = parse_integer(path, value);
    } else if (key == "cells") {
      topo.cells = parse_integer_list(path, value);
      for (const std::size_t cell : topo.cells) check_cell(path, cell);
    } else if (key == "eve_cell") {
      topo.eve_cell = parse_integer(path, value);
      check_cell(path, topo.eve_cell);
    } else if (key == "positions") {
      topo.positions = parse_positions(path, value);
    } else if (key == "eve_position") {
      const std::vector<channel::Vec2> pos = parse_positions(path, value);
      if (pos.size() != 1) fail(path, "expected exactly one [x, y] pair");
      topo.eve_position = pos[0];
    } else {
      unknown_key();
    }
    return;
  }

  if (section == "session") {
    SessionSpec& s = spec.session;
    if (key == "x_packets") {
      s.x_packets = parse_integer(path, value);
    } else if (key == "payload_bytes") {
      s.payload_bytes = parse_integer(path, value);
    } else if (key == "rounds") {
      s.rounds = parse_integer(path, value);
    } else if (key == "rotate_alice") {
      s.rotate_alice = parse_bool(path, value);
    } else if (key == "pool") {
      const std::string name = parse_string(path, value);
      const auto pool = core::pool_strategy_from_string(name);
      if (!pool.has_value())
        fail(path, "unknown pool strategy '" + name +
                       "' (one of: class-shared, terminal-mds)");
      s.pool = *pool;
    } else {
      unknown_key();
    }
    return;
  }

  if (section == "estimator") {
    EstimatorAxis& est = spec.estimator;
    if (key == "series") {
      est.series.clear();
      for (const std::string& item : split_items(path, value))
        est.series.push_back(parse_series_item(path, item));
      if (est.series.empty()) fail(path, "needs at least one estimator");
    } else if (key == "k_antennas") {
      est.k_antennas = parse_integer(path, value);
    } else if (key == "fraction_delta") {
      est.fraction_delta = parse_number(path, value);
      check_probability(path, est.fraction_delta);
    } else if (key == "safety") {
      est.safety = parse_number(path, value);
      check_probability(path, est.safety);
    } else {
      unknown_key();
    }
    return;
  }

  if (section == "sweep") {
    SweepSpec& sw = spec.sweep;
    if (key == "p") {
      sw.p_values = parse_number_list(path, value);
      for (const double p : sw.p_values) check_probability(path, p);
    } else if (key == "repeats") {
      sw.repeats = parse_integer(path, value);
      if (sw.repeats < 1) fail(path, "must be >= 1");
    } else if (key == "key") {
      // The dotted path of the generic axis. Its target must itself be a
      // settable key, but that is compile()'s job (it applies the
      // override per value) — here it is just a string.
      sw.key = parse_string(path, value);
    } else if (key == "values") {
      sw.values = parse_number_list(path, value);
    } else {
      unknown_key();
    }
    return;
  }

  if (section == "output") {
    OutputSpec& out = spec.output;
    if (key == "baseline") {
      const std::string name = parse_string(path, value);
      const auto b = baseline_from_string(name);
      if (!b.has_value())
        fail(path, "unknown baseline '" + name +
                       "' (one of: group, unicast, both)");
      out.baseline = *b;
    } else if (key == "metrics") {
      const std::string name = parse_string(path, value);
      const auto m = metric_set_from_string(name);
      if (!m.has_value())
        fail(path,
             "unknown metric set '" + name + "' (one of: session, efficiency)");
      out.metrics = *m;
    } else if (key == "analytic") {
      out.analytic = parse_bool(path, value);
    } else {
      unknown_key();
    }
    return;
  }

  if (section == "run") {
    RunSpec& run = spec.run;
    if (key == "seed") {
      // parse_integer targets std::size_t == uint64_t on every platform we
      // build; range-check anyway so a 32-bit port fails loudly, not quietly.
      static_assert(sizeof(std::size_t) == sizeof(std::uint64_t),
                    "spec seeds assume 64-bit size_t");
      run.seed = parse_integer(path, value);
    } else if (key == "threads") {
      const std::size_t n = parse_integer(path, value);
      if (n > kMaxRunThreads)
        fail(path, "at most " + std::to_string(kMaxRunThreads) +
                       " threads (0 = auto)");
      run.threads = n;
    } else {
      unknown_key();
    }
    return;
  }

  if (section == "mac") {
    net::MacParams& mac = spec.mac;
    if (key == "data_rate_bps") {
      mac.data_rate_bps = parse_number(path, value);
    } else if (key == "frame_overhead_s") {
      mac.per_frame_overhead_s = parse_number(path, value);
    } else if (key == "inter_frame_gap_s") {
      mac.inter_frame_gap_s = parse_number(path, value);
    } else if (key == "slot_s") {
      mac.slot_duration_s = parse_number(path, value);
    } else {
      unknown_key();
    }
    return;
  }

  fail(path, "unknown section '" + section + "'");
}

}  // namespace

ScenarioSpec parse_spec(std::string_view text) {
  ScenarioSpec spec;
  std::string section;
  std::set<std::string> seen_sections;

  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = std::min(text.find('\n', start), text.size());
    const std::string_view raw = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    const std::string_view line = trim(strip_comment(raw));
    if (line.empty()) {
      if (end == text.size()) break;
      continue;
    }
    const std::string prefix = "line " + std::to_string(line_no) + ": ";

    if (line.front() == '[') {
      if (line.back() != ']')
        throw SpecError(prefix + "unterminated section header " +
                        std::string(line));
      section = std::string(trim(line.substr(1, line.size() - 2)));
      bool known = false;
      for (const std::string& name : section_names())
        known = known || name == section;
      if (!known)
        throw SpecError(prefix + "unknown section [" + section + "]");
      if (!seen_sections.insert(section).second)
        throw SpecError(prefix + "duplicate section [" + section + "]");
      if (end == text.size()) break;
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos)
      throw SpecError(prefix + "expected 'key = value' or '[section]', got '" +
                      std::string(line) + "'");
    const std::string key{trim(line.substr(0, eq))};
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) throw SpecError(prefix + "empty key");
    try {
      set_field(spec, section, key, value);
    } catch (const SpecError& e) {
      throw SpecError(prefix + e.what());
    }
    if (end == text.size()) break;
  }
  return spec;
}

std::string serialize_spec(const ScenarioSpec& spec) {
  std::ostringstream out;
  const auto num = [](double v) { return format_double(v); };

  out << "name = " << quote(spec.name) << "\n";
  out << "description = " << quote(spec.description) << "\n";

  const ChannelSpec& ch = spec.channel;
  out << "\n[channel]\n";
  out << "model = \"" << channel::to_string(ch.model) << "\"\n";
  out << "p = " << num(ch.iid_p) << "\n";
  out << "default_p = " << num(ch.default_p) << "\n";
  out << "links = [";
  for (std::size_t i = 0; i < ch.links.size(); ++i)
    out << (i > 0 ? ", " : "") << serialize_link_item(ch.links[i]);
  out << "]\n";
  const double side = ch.testbed.grid.side();
  out << "area_m2 = " << num(side * side) << "\n";
  out << "interference = "
      << (ch.testbed.interference_enabled ? "true" : "false") << "\n";
  out << "tx_power_dbm = " << num(ch.testbed.pathloss.tx_power_dbm) << "\n";
  out << "ref_loss_db = " << num(ch.testbed.pathloss.ref_loss_db) << "\n";
  out << "pathloss_exponent = " << num(ch.testbed.pathloss.exponent) << "\n";
  out << "min_distance_m = " << num(ch.testbed.pathloss.min_distance_m)
      << "\n";
  out << "jammer_power_dbm = " << num(ch.testbed.interferer.tx_power_dbm)
      << "\n";
  out << "sidelobe_rejection_db = "
      << num(ch.testbed.interferer.sidelobe_rejection_db) << "\n";
  out << "noise_floor_dbm = " << num(ch.testbed.sinr.noise_floor_dbm) << "\n";
  out << "per_threshold_db = " << num(ch.testbed.sinr.per_threshold_db)
      << "\n";
  out << "per_scale_db = " << num(ch.testbed.sinr.per_scale_db) << "\n";
  out << "loss_floor = " << num(ch.testbed.sinr.floor) << "\n";
  out << "loss_ceiling = " << num(ch.testbed.sinr.ceiling) << "\n";

  const TopologySpec& topo = spec.topology;
  out << "\n[topology]\n";
  out << "n = [";
  for (std::size_t i = 0; i < topo.n_values.size(); ++i)
    out << (i > 0 ? ", " : "") << topo.n_values[i];
  out << "]\n";
  out << "max_placements = " << topo.max_placements << "\n";
  out << "cells = [";
  for (std::size_t i = 0; i < topo.cells.size(); ++i)
    out << (i > 0 ? ", " : "") << topo.cells[i];
  out << "]\n";
  out << "eve_cell = " << topo.eve_cell << "\n";
  out << "positions = [";
  for (std::size_t i = 0; i < topo.positions.size(); ++i)
    out << (i > 0 ? ", " : "") << num(topo.positions[i].x) << ", "
        << num(topo.positions[i].y);
  out << "]\n";
  if (topo.eve_position.has_value())
    out << "eve_position = [" << num(topo.eve_position->x) << ", "
        << num(topo.eve_position->y) << "]\n";

  const SessionSpec& s = spec.session;
  out << "\n[session]\n";
  out << "x_packets = " << s.x_packets << "\n";
  out << "payload_bytes = " << s.payload_bytes << "\n";
  out << "rounds = " << s.rounds << "\n";
  out << "rotate_alice = " << (s.rotate_alice ? "true" : "false") << "\n";
  out << "pool = \"" << core::to_string(s.pool) << "\"\n";

  const EstimatorAxis& est = spec.estimator;
  out << "\n[estimator]\n";
  out << "series = [";
  for (std::size_t i = 0; i < est.series.size(); ++i)
    out << (i > 0 ? ", " : "") << serialize_series_item(est.series[i]);
  out << "]\n";
  out << "k_antennas = " << est.k_antennas << "\n";
  out << "fraction_delta = " << num(est.fraction_delta) << "\n";
  out << "safety = " << num(est.safety) << "\n";

  out << "\n[sweep]\n";
  out << "p = [";
  for (std::size_t i = 0; i < spec.sweep.p_values.size(); ++i)
    out << (i > 0 ? ", " : "") << num(spec.sweep.p_values[i]);
  out << "]\n";
  out << "repeats = " << spec.sweep.repeats << "\n";
  // Only when set: an absent key axis must serialize to absent keys for
  // the parse(serialize(s)) == s round trip to hold.
  if (!spec.sweep.key.empty()) out << "key = " << quote(spec.sweep.key) << "\n";
  if (!spec.sweep.values.empty()) {
    out << "values = [";
    for (std::size_t i = 0; i < spec.sweep.values.size(); ++i)
      out << (i > 0 ? ", " : "") << num(spec.sweep.values[i]);
    out << "]\n";
  }

  out << "\n[output]\n";
  out << "baseline = \"" << to_string(spec.output.baseline) << "\"\n";
  out << "metrics = \"" << to_string(spec.output.metrics) << "\"\n";
  out << "analytic = " << (spec.output.analytic ? "true" : "false") << "\n";

  // [run] only when something is pinned: an absent key must serialize to
  // an absent key for the parse(serialize(s)) == s round trip to hold.
  if (spec.run.seed.has_value() || spec.run.threads.has_value()) {
    out << "\n[run]\n";
    if (spec.run.seed.has_value()) out << "seed = " << *spec.run.seed << "\n";
    if (spec.run.threads.has_value())
      out << "threads = " << *spec.run.threads << "\n";
  }

  out << "\n[mac]\n";
  out << "data_rate_bps = " << num(spec.mac.data_rate_bps) << "\n";
  out << "frame_overhead_s = " << num(spec.mac.per_frame_overhead_s) << "\n";
  out << "inter_frame_gap_s = " << num(spec.mac.inter_frame_gap_s) << "\n";
  out << "slot_s = " << num(spec.mac.slot_duration_s) << "\n";
  return out.str();
}

void apply_override(ScenarioSpec& spec, std::string_view key,
                    std::string_view value) {
  const std::string_view trimmed_key = trim(key);
  const std::size_t dot = trimmed_key.find('.');
  const std::string section{
      dot == std::string_view::npos ? std::string_view{}
                                    : trimmed_key.substr(0, dot)};
  const std::string field{dot == std::string_view::npos
                              ? trimmed_key
                              : trimmed_key.substr(dot + 1)};
  if (field.empty() || (dot != std::string_view::npos && section.empty()))
    throw SpecError("--set: expected section.key=value, got '" +
                    std::string(key) + "'");
  set_field(spec, section, field, trim(value));
}

}  // namespace thinair::runtime
