#pragma once
// Streaming result aggregation for sweeps.
//
// Workers push CaseResults in completion order; the sink re-serialises
// them into case-index order through a bounded reorder buffer (a map of
// out-of-order results plus a next-to-emit cursor) and, per case, (a)
// writes one NDJSON line to the optional stream and (b) folds the metrics
// into per-group util::Summary accumulators. Because emission strictly
// follows case index, both the NDJSON bytes and the accumulator contents
// are independent of thread count and steal order — this is the second
// half of the runtime's determinism contract (seeds are the first).
//
// Memory: the reorder buffer only holds results that finished ahead of
// the emission cursor (bounded by in-flight parallelism in practice), and
// summaries hold one sample per case per metric — never the full result
// objects.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/scenario.h"
#include "util/stats.h"

namespace thinair::runtime {

/// Deterministic shortest-round-trip formatting for doubles ("0.25",
/// "1e-06", ...) — what the NDJSON writer uses for every number.
[[nodiscard]] std::string format_double(double value);

class ResultSink {
 public:
  /// `ndjson` may be nullptr (aggregate only). The stream must outlive
  /// the sink.
  ResultSink(std::string scenario_name, std::ostream* ndjson);

  /// Record case `spec` -> `result`. Thread-safe. Each index must be
  /// pushed exactly once.
  void push(const CaseSpec& spec, const CaseResult& result);

  /// Declare that this run covers only the first `run_cases` of the
  /// plan's `plan_cases` (--limit): finish() appends a one-line
  /// {"truncated":true,...} footer to the NDJSON stream and
  /// print_summary flags the group rows as partial. Without this call a
  /// full run's output bytes are unchanged.
  void mark_truncated(std::size_t run_cases, std::size_t plan_cases);

  /// Flush the stream. Throws std::logic_error if indices emitted so far
  /// are not the contiguous range [0, cases()) — i.e. a case was lost.
  void finish();

  /// Cases emitted (== cases pushed once finish() succeeded).
  [[nodiscard]] std::size_t cases() const;

  struct GroupSummary {
    std::string group;
    std::size_t cases = 0;
    /// Keyed by metric name; samples are in case-index order.
    std::map<std::string, util::Summary> metrics;
  };

  /// Summaries in first-appearance (case-index) order.
  [[nodiscard]] const std::vector<GroupSummary>& summaries() const {
    return groups_;
  }

  /// Render the summaries as a fixed-width table (one row per group x
  /// metric: count, min, mean, stddev, max).
  void print_summary(std::ostream& os) const;

 private:
  void emit(const CaseSpec& spec, const CaseResult& result);

  std::string scenario_name_;
  std::ostream* ndjson_;

  mutable std::mutex mu_;
  std::size_t truncated_plan_cases_ = 0;  // 0 = not truncated
  std::size_t next_emit_ = 0;
  std::map<std::size_t, std::pair<CaseSpec, CaseResult>> pending_;
  std::vector<GroupSummary> groups_;
};

}  // namespace thinair::runtime
