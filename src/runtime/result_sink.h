#pragma once
// Lock-free streaming result aggregation for sweeps.
//
// Workers push CaseResults in completion order; push() is an
// enqueue-and-return into a per-thread SPSC ring (runtime/spsc_ring.h)
// — no mutex, no number formatting, no stream I/O ever runs on a worker
// thread. A dedicated drainer thread, spawned by the constructor and
// joined by finish() (or the destructor on error unwind), owns
// everything that used to happen under the old sink mutex: the
// case-index reorder buffer, NDJSON line building into a large buffered
// writer, and the per-group util::Summary folds. Because the drainer
// still emits strictly in case-index order, both the NDJSON bytes and
// the accumulator contents are independent of thread count and steal
// order — this is the second half of the runtime's determinism contract
// (seeds are the first), and the golden-SHA256 suites pin it.
//
// Backpressure: rings are fixed-capacity, so a producer that outruns
// the drainer spins until a slot frees up. Memory is bounded by
// O(producers x ring capacity) plus the reorder buffer, which only
// holds results that finished ahead of the emission cursor (bounded by
// in-flight parallelism in practice).
//
// Contract errors (an index pushed twice, a formatting failure) are
// detected on the drainer and rethrown by finish(); summaries() and
// print_summary() are valid once finish() has returned.

#include <array>
#include <atomic>
#include <cstdint>
#include <exception>
#include <iosfwd>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "runtime/scenario.h"
#include "runtime/slab_alloc.h"
#include "runtime/spsc_ring.h"
#include "util/mutex.h"
#include "util/stats.h"
#include "util/thread_annotations.h"

namespace thinair::runtime {

/// Deterministic shortest-round-trip formatting for doubles ("0.25",
/// "1e-06", ...) — what the NDJSON writer uses for every number.
[[nodiscard]] std::string format_double(double value);

class ResultSink {
 public:
  /// `ndjson` may be nullptr (aggregate only). The stream must outlive
  /// the sink. Spawns the drainer thread.
  ResultSink(std::string scenario_name, std::ostream* ndjson);

  /// Stops and joins the drainer. Destruction without finish() is the
  /// error-unwind path: buffered output that finish() would have
  /// written stays unwritten, and contract violations are swallowed.
  ~ResultSink();

  ResultSink(const ResultSink&) = delete;
  ResultSink& operator=(const ResultSink&) = delete;

  /// Record case `spec` -> `result`. Thread-safe, wait-free on the
  /// worker side apart from full-ring backpressure: the record is
  /// enqueued on the calling thread's ring and the call returns. Each
  /// index must be pushed exactly once; violations surface as
  /// std::logic_error from finish(), which must happen-after every
  /// push (the engine guarantees this by joining its pool first).
  void push(const CaseSpec& spec, const CaseResult& result);

  /// Declare that this run covers only the first `run_cases` of the
  /// plan's `plan_cases` (--limit): finish() appends a one-line
  /// {"truncated":true,...} footer to the NDJSON stream and
  /// print_summary flags the group rows as partial. Without this call a
  /// full run's output bytes are unchanged. Call before finish().
  void mark_truncated(std::size_t run_cases, std::size_t plan_cases);

  /// Drain-join: stops the drainer once every ring is empty, writes the
  /// buffered NDJSON tail plus the optional truncation footer, and
  /// flushes the stream. Throws std::logic_error if the emitted indices
  /// are not the contiguous range [0, cases()) — i.e. a case was lost
  /// or pushed twice.
  void finish();

  /// Cases emitted so far (== cases pushed, once finish() succeeded).
  [[nodiscard]] std::size_t cases() const;

  struct GroupSummary {
    std::string group;
    std::size_t cases = 0;
    /// Keyed by metric name; samples are in case-index order.
    std::map<std::string, util::Summary> metrics;
  };

  /// Summaries in first-appearance (case-index) order. Valid once
  /// finish() has returned — the caller then owns the drainer state, so
  /// the accessor claims the (no-op) drainer role for the read.
  [[nodiscard]] const std::vector<GroupSummary>& summaries() const {
    util::RoleLock role(&drainer_role_);
    return groups_;
  }

  /// Render the summaries as a fixed-width table (one row per group x
  /// metric: count, min, mean, stddev, max). Valid once finish() has
  /// returned.
  void print_summary(std::ostream& os) const;

  struct ReorderStats {
    /// High-water mark of out-of-order records parked in the reorder
    /// buffer — the actual memory the slab arena has to cover.
    std::size_t peak_pending = 0;
    /// Node allocation behaviour of the buffer's slab arena. After a
    /// warm-up window, freelist_hits should track acquires: churn
    /// recycles blocks instead of growing chunks.
    SlabArena::Stats slab;
  };

  /// Reorder-buffer instrumentation (bench/micro_engine reports it into
  /// BENCH_engine.json). Valid once finish() has returned, same
  /// ownership rule as summaries().
  [[nodiscard]] ReorderStats reorder_stats() const {
    util::RoleLock role(&drainer_role_);
    return ReorderStats{peak_pending_, pending_arena_.stats()};
  }

 private:
  struct Record {
    CaseSpec spec;
    CaseResult result;
  };
  using Ring = SpscRing<Record>;

  /// Records each producer ring can hold before push() backpressures.
  static constexpr std::size_t kRingCapacity = 1024;
  /// Ring slots: engine::kMaxRunThreads workers plus the submitting
  /// thread plus slack for external callers.
  static constexpr std::size_t kMaxProducers = 1088;
  /// Drainer flushes its line buffer to the stream at this size.
  static constexpr std::size_t kFlushBytes = 256 * 1024;

  [[nodiscard]] Ring& producer_ring();
  void drain_loop() THINAIR_EXCLUDES(drainer_role_);
  bool drain_rings() THINAIR_REQUIRES(drainer_role_);
  void accept(Record&& record) THINAIR_REQUIRES(drainer_role_);
  void emit(const CaseSpec& spec, const CaseResult& result)
      THINAIR_REQUIRES(drainer_role_);
  void flush_buffer() THINAIR_REQUIRES(drainer_role_);
  void stop_drainer();

  std::string scenario_name_;
  std::ostream* ndjson_;
  std::uint64_t sink_id_;

  // Producer registry: slots are claimed lock-free (fetch_add) by the
  // first push from each thread; the Ring* store/load pair
  // (release/acquire) publishes the ring to the drainer. This is the
  // *worker-owned* half of the sink: nothing below it is ever touched
  // from a push path.
  std::array<std::atomic<Ring*>, kMaxProducers> rings_{};
  std::atomic<std::size_t> n_rings_{0};

  // Drainer-owned state, guarded by an explicit single-owner capability:
  // drain_loop() holds drainer_role_ for its lifetime, and finish()/the
  // destructor reclaim it only after the drainer thread is joined (the
  // join is the happens-before edge; the role makes the ownership split
  // a compile-time property instead of a comment). Any access outside a
  // region holding the role fails -Wthread-safety.
  using PendingAlloc = SlabAllocator<std::pair<const std::size_t, Record>>;
  using PendingMap =
      std::map<std::size_t, Record, std::less<std::size_t>, PendingAlloc>;

  util::Role drainer_role_;
  std::size_t next_emit_ THINAIR_GUARDED_BY(drainer_role_) = 0;
  // Arena before map: map nodes live in the arena's chunks, so the map
  // must be destroyed (and must release every node) first.
  SlabArena pending_arena_ THINAIR_GUARDED_BY(drainer_role_);
  PendingMap pending_ THINAIR_GUARDED_BY(drainer_role_){
      PendingAlloc(&pending_arena_)};
  std::size_t peak_pending_ THINAIR_GUARDED_BY(drainer_role_) = 0;
  std::vector<GroupSummary> groups_ THINAIR_GUARDED_BY(drainer_role_);
  std::string buffer_ THINAIR_GUARDED_BY(drainer_role_);
  std::exception_ptr drain_error_ THINAIR_GUARDED_BY(drainer_role_);

  // Written by mark_truncated() strictly before finish() joins the
  // drainer (main thread only), read by the drainer's final emit — the
  // ordering contract is "call before finish()", documented above.
  std::size_t truncated_plan_cases_ = 0;  // 0 = not truncated
  std::atomic<std::size_t> emitted_{0};
  std::atomic<bool> stop_{false};
  std::thread drainer_;
};

}  // namespace thinair::runtime
