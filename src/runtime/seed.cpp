#include "runtime/seed.h"

namespace thinair::runtime {

namespace {

constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;

// SplitMix64 output mix (Steele, Lea & Flood 2014).
std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t master_seed, std::uint64_t index) {
  // State after `index + 1` SplitMix64 steps from `master_seed`; the +1
  // keeps derive_seed(m, 0) != mix(m), so a case seed never equals the
  // value a plain SplitMix64(m) seeder would hand out first.
  return mix(master_seed + (index + 1) * kGolden);
}

std::uint64_t derive_seed2(std::uint64_t master_seed, std::uint64_t index) {
  return mix(derive_seed(master_seed, index) + kGolden);
}

}  // namespace thinair::runtime
