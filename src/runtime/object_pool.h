#pragma once
// Free-list object pools for session-churn hot paths.
//
// Serving millions of sessions means create/run/destroy is itself a hot
// loop: per-session state (GroupSecretSession, NodeSession, hub Session
// records, payload arenas) must be recycled, not rebuilt, or setup and
// teardown allocate at the exact rate the round loop was taught not to.
// An ObjectPool<T> keeps every T it ever constructed and hands them out
// acquire/reset/release style (the HFT LimitPool/OrderPool idiom):
//
//   acquire(args...)   pops a free object and calls obj->reset(args...),
//                      or constructs T(args...) when the free list is dry;
//   release(obj)       pushes the object back on the free list.
//
// The reset contract makes pooling invisible: T::reset(args...) must
// leave the object observably equivalent to a freshly constructed
// T(args...) — the golden-NDJSON suites hold the sessions to that
// bit-for-bit (docs/sessions.md). If reset() throws, the pool catches
// the object back onto the free list before rethrowing, so a failed
// acquire can neither leak the slot nor hand out a half-reset object
// later (reset implementations validate before mutating).
//
// Threading: the pool itself is externally synchronized — one per worker
// thread (runtime::worker_pools()) or guarded by the owner's mutex
// (SessionHub). Only the counters are shared: monitoring threads read
// PoolStats without the owner's lock, so each counter is a relaxed
// atomic on its own cache line (the HubStats pattern) and never
// false-shares with its neighbours or the free list.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "packet/arena.h"

namespace thinair::runtime {

/// Plain-value copy of a pool's counters (PoolStats itself is atomic and
/// therefore not copyable).
struct PoolCounters {
  std::uint64_t acquired = 0;     // total acquire() calls that succeeded
  std::uint64_t constructed = 0;  // acquires served by a fresh T(args...)
  std::uint64_t released = 0;     // objects returned to the free list
  std::uint64_t reset_failures = 0;  // reset() threw; object went back

  /// Fraction of acquires served from the free list. 1.0 once warm.
  [[nodiscard]] double hit_rate() const {
    return acquired == 0
               ? 1.0
               : static_cast<double>(acquired - constructed) /
                     static_cast<double>(acquired);
  }
};

/// Shared counters of one pool. Each atomic sits on its own cache line so
/// the owning worker and any monitoring reader never false-share.
struct PoolStats {
  alignas(64) std::atomic<std::uint64_t> acquired{0};
  alignas(64) std::atomic<std::uint64_t> constructed{0};
  alignas(64) std::atomic<std::uint64_t> released{0};
  alignas(64) std::atomic<std::uint64_t> reset_failures{0};

  [[nodiscard]] PoolCounters snapshot() const {
    PoolCounters c;
    c.acquired = acquired.load(std::memory_order_relaxed);
    c.constructed = constructed.load(std::memory_order_relaxed);
    c.released = released.load(std::memory_order_relaxed);
    c.reset_failures = reset_failures.load(std::memory_order_relaxed);
    return c;
  }
};

template <typename T>
class ObjectPool {
 public:
  ObjectPool() = default;
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  /// RAII lease on a pooled object: releases back to the pool on
  /// destruction. Move-only; the pool must outlive its handles.
  class Handle {
   public:
    Handle() = default;
    Handle(ObjectPool* pool, T* obj) : pool_(pool), obj_(obj) {}
    Handle(Handle&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          obj_(std::exchange(other.obj_, nullptr)) {}
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        reset();
        pool_ = std::exchange(other.pool_, nullptr);
        obj_ = std::exchange(other.obj_, nullptr);
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { reset(); }

    /// Release the object back to the pool now.
    void reset() {
      if (obj_ != nullptr) pool_->release(obj_);
      pool_ = nullptr;
      obj_ = nullptr;
    }

    [[nodiscard]] T* get() const { return obj_; }
    T* operator->() const { return obj_; }
    T& operator*() const { return *obj_; }
    explicit operator bool() const { return obj_ != nullptr; }

   private:
    ObjectPool* pool_ = nullptr;
    T* obj_ = nullptr;
  };

  /// A ready-to-use object: recycled via T::reset(args...) when the free
  /// list has one, freshly constructed otherwise. The caller owns it
  /// until release() (prefer acquire_scoped for exception safety).
  template <typename... Args>
  [[nodiscard]] T* acquire(Args&&... args) {
    if (!free_.empty()) {
      T* obj = free_.back();
      free_.pop_back();
      try {
        obj->reset(std::forward<Args>(args)...);
      } catch (...) {
        // The object stays pooled (reset validates before mutating, so
        // it is still resettable); the failed acquire is not counted.
        free_.push_back(obj);
        stats_.reset_failures.fetch_add(1, std::memory_order_relaxed);
        throw;
      }
      stats_.acquired.fetch_add(1, std::memory_order_relaxed);
      return obj;
    }
    storage_.push_back(std::make_unique<T>(std::forward<Args>(args)...));
    stats_.acquired.fetch_add(1, std::memory_order_relaxed);
    stats_.constructed.fetch_add(1, std::memory_order_relaxed);
    return storage_.back().get();
  }

  /// acquire() wrapped in a Handle that releases on scope exit.
  template <typename... Args>
  [[nodiscard]] Handle acquire_scoped(Args&&... args) {
    return Handle(this, acquire(std::forward<Args>(args)...));
  }

  /// Return `obj` to the free list. Must be a pointer this pool handed
  /// out; the object is not touched until its next acquire-time reset().
  void release(T* obj) {
    free_.push_back(obj);
    stats_.released.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] const PoolStats& stats() const { return stats_; }
  /// Objects ever constructed (live + free).
  [[nodiscard]] std::size_t size() const { return storage_.size(); }
  [[nodiscard]] std::size_t available() const { return free_.size(); }

  /// Visit every object ever constructed, live and free — for aggregate
  /// accounting (e.g. total arena capacity). Same synchronization domain
  /// as acquire/release.
  template <typename F>
  void for_each(F&& f) const {
    for (const auto& obj : storage_) f(*obj);
  }

 private:
  std::vector<std::unique_ptr<T>> storage_;
  std::vector<T*> free_;
  PoolStats stats_;
};

/// Pool of per-session PayloadArenas. Release keeps every arena's blocks
/// (the whole point: the next session bumps into warm memory) but applies
/// the trim policy, so one pathological session cannot pin its peak for
/// the process lifetime — capacity decays back toward the steady-state
/// watermark (packet/arena.h).
class ArenaPool {
 public:
  /// RAII lease releasing through the ArenaPool (so the trim policy
  /// applies), not the raw object pool.
  class Handle {
   public:
    Handle() = default;
    Handle(ArenaPool* pool, packet::PayloadArena* arena)
        : pool_(pool), arena_(arena) {}
    Handle(Handle&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          arena_(std::exchange(other.arena_, nullptr)) {}
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        reset();
        pool_ = std::exchange(other.pool_, nullptr);
        arena_ = std::exchange(other.arena_, nullptr);
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { reset(); }

    void reset() {
      if (arena_ != nullptr) pool_->release(arena_);
      pool_ = nullptr;
      arena_ = nullptr;
    }

    [[nodiscard]] packet::PayloadArena* get() const { return arena_; }
    packet::PayloadArena* operator->() const { return arena_; }
    packet::PayloadArena& operator*() const { return *arena_; }
    explicit operator bool() const { return arena_ != nullptr; }

   private:
    ArenaPool* pool_ = nullptr;
    packet::PayloadArena* arena_ = nullptr;
  };

  /// An empty arena, blocks retained from its previous session.
  [[nodiscard]] packet::PayloadArena* acquire() { return pool_.acquire(); }

  [[nodiscard]] Handle acquire_scoped() { return Handle(this, acquire()); }

  void release(packet::PayloadArena* arena) {
    arena->reset();
    trimmed_bytes_.fetch_add(arena->trim_to_watermark(),
                             std::memory_order_relaxed);
    pool_.release(arena);
  }

  [[nodiscard]] const PoolStats& stats() const { return pool_.stats(); }
  [[nodiscard]] std::size_t size() const { return pool_.size(); }
  [[nodiscard]] std::size_t available() const { return pool_.available(); }
  /// Cumulative bytes returned to the allocator by release-time trims.
  [[nodiscard]] std::uint64_t trimmed_bytes() const {
    return trimmed_bytes_.load(std::memory_order_relaxed);
  }
  /// Total backing storage currently held across all pooled arenas.
  /// Owner-thread accounting, like size()/available().
  [[nodiscard]] std::size_t capacity() const {
    std::size_t total = 0;
    pool_.for_each(
        [&](const packet::PayloadArena& a) { total += a.capacity(); });
    return total;
  }

 private:
  ObjectPool<packet::PayloadArena> pool_;
  alignas(64) std::atomic<std::uint64_t> trimmed_bytes_{0};
};

}  // namespace thinair::runtime
