#pragma once
// A work-stealing thread pool for embarrassingly parallel sweeps.
//
// Fixed worker threads, one run queue per worker. submit() deals tasks
// round-robin across the queues; a worker pops from the front of its own
// queue and, when empty, steals from the front of a sibling's. Both ends
// are FIFO — unlike fork-join pools (own-LIFO for cache warmth), sweep
// tasks are independent experiments whose results stream through an
// index-ordered reorder buffer (runtime/result_sink.h), and oldest-first
// execution keeps completion order close to index order so that buffer
// stays bounded by in-flight parallelism. Queues are mutex-guarded
// deques: tasks are whole experiments (milliseconds to seconds), so
// queue contention is noise and a lock-free Chase-Lev deque would buy
// nothing.
//
// The pool guarantees nothing about execution order — determinism is the
// caller's job, and the runtime achieves it by deriving each task's seed
// from its index (runtime/seed.h) and reordering results by index
// (runtime/result_sink.h), never from arrival order.

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include <atomic>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace thinair::runtime {

class TaskPool {
 public:
  /// Spawn `threads` workers (0 = std::thread::hardware_concurrency()).
  explicit TaskPool(std::size_t threads = 0);

  /// Drains outstanding work (wait_idle) and joins the workers.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueue one task. Thread-safe; may be called from inside a task.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// Run fn(i) for every i in [0, n) across the pool's workers *and the
  /// calling thread*, dynamically load-balanced through one shared
  /// atomic cursor — the index-sweep fast path. Compared with n
  /// submit() calls this costs one queue/mutex round-trip per *worker*
  /// instead of per task, and the grain-1 cursor keeps completion order
  /// close to index order (good for the sink's reorder buffer) while
  /// still absorbing heterogeneous case costs. Blocks until all n
  /// indices ran. `fn` must not throw (catch inside, as the engine
  /// does); do not call from inside a pool task.
  void for_each_index(std::size_t n,
                      const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t threads() const { return workers_.size(); }

  /// hardware_concurrency(), never 0.
  [[nodiscard]] static std::size_t hardware_threads();

 private:
  // One cache line per queue: workers hammer their own queue's mutex on
  // every pop while siblings probe it to steal, so two queues sharing a
  // line would turn independent pops into coherence traffic. (Queues are
  // heap-allocated; alignas on the type carries through operator new.)
  struct alignas(64) Queue {
    util::Mutex mu;
    std::deque<std::function<void()>> tasks THINAIR_GUARDED_BY(mu);
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, std::function<void()>& out)
      THINAIR_EXCLUDES(mu_);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  // The coordination block starts on its own line so the cold, read-only
  // vectors above it never bounce when workers sleep/wake.
  alignas(64) util::Mutex mu_;  // guards sleeping/waking + counters
  util::CondVar wake_;          // workers sleep here when starved
  util::CondVar idle_;          // wait_idle sleeps here
  // Submitted but not yet completed.
  std::size_t unfinished_ THINAIR_GUARDED_BY(mu_) = 0;
  // Enqueued but not yet popped by anyone.
  std::size_t unclaimed_ THINAIR_GUARDED_BY(mu_) = 0;
  // Round-robin submit cursor.
  std::size_t next_queue_ THINAIR_GUARDED_BY(mu_) = 0;
  bool stop_ THINAIR_GUARDED_BY(mu_) = false;
};

}  // namespace thinair::runtime
