#include "runtime/task_pool.h"

#include <utility>

namespace thinair::runtime {

std::size_t TaskPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

TaskPool::TaskPool(std::size_t threads) {
  if (threads == 0) threads = hardware_threads();
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

TaskPool::~TaskPool() {
  wait_idle();
  {
    util::MutexLock lock(&mu_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void TaskPool::submit(std::function<void()> task) {
  std::size_t target;
  {
    util::MutexLock lock(&mu_);
    target = next_queue_++ % queues_.size();
    ++unfinished_;
  }
  {
    util::MutexLock lock(&queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  {
    // unclaimed_ becomes visible only after the task is actually in its
    // queue, so a worker woken by the count below is guaranteed to find
    // it on a scan.
    util::MutexLock lock(&mu_);
    ++unclaimed_;
  }
  wake_.notify_one();
}

void TaskPool::wait_idle() {
  util::MutexLock lock(&mu_);
  while (unfinished_ != 0) idle_.wait(mu_);
}

void TaskPool::for_each_index(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  // One claim loop shared by every participant; capturing fn by
  // reference is safe because this frame outlives the pool drain below.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const auto body = [n, &fn, next] {
    for (std::size_t i = next->fetch_add(1, std::memory_order_relaxed); i < n;
         i = next->fetch_add(1, std::memory_order_relaxed))
      fn(i);
  };
  for (std::size_t w = 0; w < workers_.size() && w < n; ++w) submit(body);
  body();  // the calling thread sweeps too instead of idling in wait
  wait_idle();
}

bool TaskPool::try_pop(std::size_t self, std::function<void()>& out) {
  {  // Own queue first, oldest task (FIFO) — see the header for why.
    Queue& q = *queues_[self];
    util::MutexLock lock(&q.mu);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  // Steal from siblings, oldest task (FIFO), starting after self so the
  // victim choice rotates instead of hammering queue 0.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    Queue& q = *queues_[(self + k) % queues_.size()];
    util::MutexLock lock(&q.mu);
    if (!q.tasks.empty()) {
      out = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void TaskPool::worker_loop(std::size_t self) {
  for (;;) {
    {
      // Sleep until at least one enqueued task is unclaimed, then claim
      // it by decrementing. The claim guarantees the scan below finds a
      // task eventually (claims never exceed enqueued tasks), so no
      // polling timeout is needed and starved workers cost nothing.
      util::MutexLock lock(&mu_);
      while (!stop_ && unclaimed_ == 0) wake_.wait(mu_);
      if (stop_) return;
      --unclaimed_;
    }
    std::function<void()> task;
    // The claimed task is in some queue; a single scan can transiently
    // miss it (a sibling may pop "ours" while we walk), so retry.
    while (!try_pop(self, task)) std::this_thread::yield();
    task();
    util::MutexLock lock(&mu_);
    if (--unfinished_ == 0) idle_.notify_all();
  }
}

}  // namespace thinair::runtime
