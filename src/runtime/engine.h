#pragma once
// The sweep engine: expands a scenario's SweepPlan, derives one seed per
// case, executes every case on a work-stealing TaskPool (plus the
// submitting thread) and streams the results through a ResultSink, whose
// drainer thread owns all formatting and I/O — workers only ever do a
// wait-free ring push (see docs/runtime.md). The determinism contract:
// for a fixed (scenario, master_seed), the NDJSON bytes and the summary
// aggregates are identical for every thread count, because nothing
// observable depends on scheduling — seeds come from case indices and
// the sink re-orders emission by index.

#include <cstdint>
#include <utility>
#include <vector>

#include "core/session.h"
#include "core/unicast.h"
#include "packet/arena.h"
#include "runtime/object_pool.h"
#include "runtime/result_sink.h"
#include "runtime/scenario.h"

namespace thinair::runtime {

/// Hard ceiling on worker threads one run will spawn. Output is
/// thread-count-invariant (the determinism contract), so the engine
/// clamps rather than errors; the CLI rejects requests beyond it up
/// front so typos fail loudly.
inline constexpr std::size_t kMaxRunThreads = 1024;

struct RunOptions {
  std::size_t threads = 0;        // 0 = hardware concurrency
  std::uint64_t master_seed = 1;
  /// Run only the first `limit` cases of the plan (0 = all) — a cheap
  /// smoke-run knob for the CLI.
  std::size_t limit = 0;
};

struct RunStats {
  std::size_t cases = 0;       // cases actually run (after --limit)
  std::size_t plan_cases = 0;  // cases the plan holds
  std::size_t threads = 0;
  double wall_s = 0.0;

  /// True when --limit cut the plan short — per-group summaries then
  /// cover partial groups (the sink stamps the NDJSON accordingly).
  [[nodiscard]] bool truncated() const { return cases < plan_cases; }

  [[nodiscard]] double cases_per_s() const {
    return wall_s > 0.0 ? static_cast<double>(cases) / wall_s : 0.0;
  }
};

/// Execute `scenario` and feed every case into `sink` (the caller calls
/// sink.finish() semantics internally — the sink is finished on return).
/// Throws whatever the scenario's plan/run throws; with threads > 1 the
/// first case exception is rethrown after the pool drains.
RunStats run_scenario(const Scenario& scenario, const RunOptions& options,
                      ResultSink& sink);

/// Convenience for presentation layers (bench tables) that need every
/// case, not just aggregates: run on the engine and return (spec, result)
/// pairs in case-index order. Holds all results in memory — use the sink
/// API for unbounded sweeps.
std::vector<std::pair<CaseSpec, CaseResult>> run_scenario_collect(
    const Scenario& scenario, const RunOptions& options,
    RunStats* stats = nullptr);

/// The calling worker's reusable payload arena. The engine resets it
/// before every case, so a scenario's case function can hand it to the
/// sessions it builds (SessionConfig::arena) and a sweep of thousands of
/// cases allocates its payload memory once per thread instead of once per
/// payload. Arena contents never outlive a case and never cross threads,
/// so the determinism contract is unaffected.
[[nodiscard]] packet::PayloadArena& worker_arena();

/// The calling worker's session pools: free-list recycled
/// GroupSecretSession / UnicastSession objects plus an arena pool for
/// per-session arenas. Scenario case functions acquire sessions here
/// (acquire == construct bit-for-bit, by the reset() contract), so a
/// sweep of thousands of cases reuses one session object per worker
/// instead of rebuilding per-session state per case. Pool objects never
/// cross threads; acquisition order per worker is irrelevant to output
/// bytes, so the determinism contract is unaffected.
struct WorkerPools {
  ObjectPool<core::GroupSecretSession> group_sessions;
  ObjectPool<core::UnicastSession> unicast_sessions;
  ArenaPool arenas;
};
[[nodiscard]] WorkerPools& worker_pools();

}  // namespace thinair::runtime
