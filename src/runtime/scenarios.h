#pragma once
// Built-in scenario definitions: the paper's figures and headline tables
// as ScenarioSpec literals, compiled and registered through the same
// declarative path (runtime/scenario_spec.h) every user spec takes. The
// bench programs and the `thinair` CLI are both thin shells over these
// registrations, and `thinair describe fig2` dumps the literals back out
// in spec-file syntax.

#include "runtime/scenario.h"
#include "runtime/scenario_spec.h"

namespace thinair::runtime {

/// Scenario names registered by register_builtin_scenarios().
inline constexpr const char* kFig1Scenario = "fig1";
inline constexpr const char* kFig2Scenario = "fig2";
inline constexpr const char* kHeadlineScenario = "headline";

/// The built-ins as specs (what register_builtin_scenarios compiles).
[[nodiscard]] ScenarioSpec fig1_spec();
[[nodiscard]] ScenarioSpec fig2_spec();
[[nodiscard]] ScenarioSpec headline_spec();

}  // namespace thinair::runtime
