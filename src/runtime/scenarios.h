#pragma once
// Built-in scenario definitions: the paper's figures and headline tables
// expressed as data (SweepPlan + case function) so the engine can run
// them batched, parallel and deterministic. The bench programs and the
// `thinair` CLI are both thin shells over these registrations.

#include "runtime/scenario.h"

namespace thinair::runtime {

/// Scenario names registered by register_builtin_scenarios().
inline constexpr const char* kFig1Scenario = "fig1";
inline constexpr const char* kFig2Scenario = "fig2";
inline constexpr const char* kHeadlineScenario = "headline";

}  // namespace thinair::runtime
