#include "runtime/engine.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "runtime/seed.h"
#include "runtime/task_pool.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace thinair::runtime {

packet::PayloadArena& worker_arena() {
  thread_local packet::PayloadArena arena;
  return arena;
}

WorkerPools& worker_pools() {
  thread_local WorkerPools pools;
  return pools;
}

RunStats run_scenario(const Scenario& scenario, const RunOptions& options,
                      ResultSink& sink) {
  const SweepPlan plan = scenario.plan();
  std::size_t n_cases = plan.size();
  if (options.limit != 0 && options.limit < n_cases) n_cases = options.limit;
  if (n_cases < plan.size()) sink.mark_truncated(n_cases, plan.size());

  // More workers than cases is pure overhead, and kMaxRunThreads bounds
  // runaway requests (e.g. a wrapped negative); neither clamp can change
  // any output byte — the sink re-orders by case index.
  std::size_t threads =
      options.threads == 0 ? TaskPool::hardware_threads() : options.threads;
  threads = std::min(threads, kMaxRunThreads);
  threads = std::min(threads, std::max<std::size_t>(n_cases, 1));

  const auto t0 = std::chrono::steady_clock::now();

  const auto run_case = [&](std::size_t index) {
    // Reset applies the decaying-watermark trim too, so a worker whose
    // arena ballooned on one pathological case gives the memory back
    // instead of pinning the peak for the whole sweep.
    worker_arena().reset();
    worker_arena().trim_to_watermark();
    CaseSpec spec{index, derive_seed(options.master_seed, index),
                  plan.at(index)};
    const CaseResult result = scenario.run(spec);
    sink.push(spec, result);
  };

  if (threads <= 1) {
    for (std::size_t i = 0; i < n_cases; ++i) run_case(i);
  } else {
    // threads-1 pool workers: the submitting thread joins the sweep via
    // for_each_index instead of idling, so `threads` is the number of
    // threads actually running cases (and pushing into sink rings).
    struct ErrBox {
      util::Mutex mu;
      std::exception_ptr first THINAIR_GUARDED_BY(mu);
    } err;
    {
      TaskPool pool(threads - 1);
      pool.for_each_index(n_cases, [&](std::size_t i) {
        try {
          run_case(i);
        } catch (...) {
          util::MutexLock lock(&err.mu);
          if (!err.first) err.first = std::current_exception();
        }
      });
    }
    std::exception_ptr first_error;
    {
      util::MutexLock lock(&err.mu);
      first_error = err.first;
    }
    if (first_error) std::rethrow_exception(first_error);
  }

  sink.finish();

  const auto t1 = std::chrono::steady_clock::now();
  RunStats stats;
  stats.cases = n_cases;
  stats.plan_cases = plan.size();
  stats.threads = threads;
  stats.wall_s = std::chrono::duration<double>(t1 - t0).count();
  return stats;
}

std::vector<std::pair<CaseSpec, CaseResult>> run_scenario_collect(
    const Scenario& scenario, const RunOptions& options, RunStats* stats) {
  // Build the plan once and hand run_scenario a factory that replays it —
  // plan factories can be expensive (placement enumeration).
  const SweepPlan plan = scenario.plan();
  std::vector<std::pair<CaseSpec, CaseResult>> collected(
      options.limit != 0 ? std::min(options.limit, plan.size())
                         : plan.size());
  Scenario wrapped = scenario;
  wrapped.plan = [&plan] { return plan; };
  wrapped.run = [&](const CaseSpec& spec) {
    CaseResult result = scenario.run(spec);
    // Each case writes its own preallocated element — index-disjoint,
    // so no lock is needed; the pool join publishes the writes.
    collected[spec.index] = {spec, result};
    return result;
  };
  ResultSink sink(scenario.name, nullptr);
  const RunStats run = run_scenario(wrapped, options, sink);
  if (stats != nullptr) *stats = run;
  return collected;
}

}  // namespace thinair::runtime
