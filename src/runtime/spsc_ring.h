#pragma once
// A fixed-capacity single-producer/single-consumer ring buffer.
//
// This is the wait-free substrate of the lock-free result path
// (runtime/result_sink.h): each worker thread owns exactly one ring as
// its producer side, and the sink's drainer thread is the single
// consumer of all of them. The protocol is the classic Lamport queue
// with cached cursors:
//
//   - `tail_` is written only by the producer (release) and read by the
//     consumer (acquire); `head_` is the mirror image. The release
//     store on `tail_` publishes the slot contents written just before
//     it, so the consumer's acquire load is the only synchronisation a
//     pop needs — no CAS, no locks, no fences beyond acquire/release.
//   - Each side keeps a plain (non-atomic) snapshot of the other side's
//     cursor and only re-reads the shared atomic when the snapshot says
//     the ring looks full/empty. A push or pop therefore touches the
//     *other* side's cache line only ~1/capacity of the time instead of
//     every call.
//   - The two cursor pairs live on separate cache lines (`alignas(64)`)
//     so producer and consumer never false-share.
//
// Overflow policy: `try_push` fails when the ring is full; `push` spins
// (yielding) until a slot frees up — bounded backpressure, chosen over
// unbounded queues so a stalled consumer surfaces as producer latency
// instead of unbounded memory growth. The memory-ordering argument is
// machine-checked by the ThreadSanitizer CI job (THINAIR_SANITIZE=thread)
// over tests/ring_test.cpp, not just asserted here.

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace thinair::runtime {

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to the next power of two (minimum 1) so the
  /// slot index is a mask, not a modulo.
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Producer side. False when the ring is full; `value` is untouched
  /// on failure — dropping the result silently loses the element.
  [[nodiscard]] bool try_push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ == capacity()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ == capacity()) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side. Spins (yielding) until a slot is free — the
  /// bounded-backpressure overflow policy.
  void push(T value) {
    while (!try_push(std::move(value))) std::this_thread::yield();
  }

  /// Consumer side. False when the ring is empty (`out` untouched).
  [[nodiscard]] bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side view; racy (but conservative) from anywhere else.
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;

  // Consumer-owned line: its cursor plus its snapshot of the producer's.
  alignas(64) std::atomic<std::size_t> head_{0};
  std::size_t cached_tail_ = 0;
  // Producer-owned line.
  alignas(64) std::atomic<std::size_t> tail_{0};
  std::size_t cached_head_ = 0;
};

}  // namespace thinair::runtime
