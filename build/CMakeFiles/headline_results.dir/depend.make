# Empty dependencies file for headline_results.
# This may be replaced when dependencies are built.
