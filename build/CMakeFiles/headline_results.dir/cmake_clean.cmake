file(REMOVE_RECURSE
  "CMakeFiles/headline_results.dir/bench/headline_results.cpp.o"
  "CMakeFiles/headline_results.dir/bench/headline_results.cpp.o.d"
  "headline_results"
  "headline_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
