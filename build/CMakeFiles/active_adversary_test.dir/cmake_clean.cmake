file(REMOVE_RECURSE
  "CMakeFiles/active_adversary_test.dir/tests/active_adversary_test.cpp.o"
  "CMakeFiles/active_adversary_test.dir/tests/active_adversary_test.cpp.o.d"
  "active_adversary_test"
  "active_adversary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_adversary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
