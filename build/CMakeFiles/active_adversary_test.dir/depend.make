# Empty dependencies file for active_adversary_test.
# This may be replaced when dependencies are built.
