# Empty dependencies file for multi_antenna_eve.
# This may be replaced when dependencies are built.
