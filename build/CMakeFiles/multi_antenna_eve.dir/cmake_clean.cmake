file(REMOVE_RECURSE
  "CMakeFiles/multi_antenna_eve.dir/examples/multi_antenna_eve.cpp.o"
  "CMakeFiles/multi_antenna_eve.dir/examples/multi_antenna_eve.cpp.o.d"
  "multi_antenna_eve"
  "multi_antenna_eve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_antenna_eve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
