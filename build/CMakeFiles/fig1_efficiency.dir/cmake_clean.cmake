file(REMOVE_RECURSE
  "CMakeFiles/fig1_efficiency.dir/bench/fig1_efficiency.cpp.o"
  "CMakeFiles/fig1_efficiency.dir/bench/fig1_efficiency.cpp.o.d"
  "fig1_efficiency"
  "fig1_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
