file(REMOVE_RECURSE
  "CMakeFiles/testbed_demo.dir/examples/testbed_demo.cpp.o"
  "CMakeFiles/testbed_demo.dir/examples/testbed_demo.cpp.o.d"
  "testbed_demo"
  "testbed_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testbed_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
