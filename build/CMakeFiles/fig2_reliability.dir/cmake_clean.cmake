file(REMOVE_RECURSE
  "CMakeFiles/fig2_reliability.dir/bench/fig2_reliability.cpp.o"
  "CMakeFiles/fig2_reliability.dir/bench/fig2_reliability.cpp.o.d"
  "fig2_reliability"
  "fig2_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
