# Empty dependencies file for key_refresh.
# This may be replaced when dependencies are built.
