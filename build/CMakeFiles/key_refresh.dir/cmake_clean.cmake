file(REMOVE_RECURSE
  "CMakeFiles/key_refresh.dir/examples/key_refresh.cpp.o"
  "CMakeFiles/key_refresh.dir/examples/key_refresh.cpp.o.d"
  "key_refresh"
  "key_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
