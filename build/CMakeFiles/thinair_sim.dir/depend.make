# Empty dependencies file for thinair_sim.
# This may be replaced when dependencies are built.
