file(REMOVE_RECURSE
  "CMakeFiles/thinair_sim.dir/examples/thinair_sim.cpp.o"
  "CMakeFiles/thinair_sim.dir/examples/thinair_sim.cpp.o.d"
  "thinair_sim"
  "thinair_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thinair_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
