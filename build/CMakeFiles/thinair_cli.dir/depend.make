# Empty dependencies file for thinair_cli.
# This may be replaced when dependencies are built.
