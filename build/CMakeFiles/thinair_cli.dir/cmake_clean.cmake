file(REMOVE_RECURSE
  "CMakeFiles/thinair_cli.dir/tools/thinair_cli.cpp.o"
  "CMakeFiles/thinair_cli.dir/tools/thinair_cli.cpp.o.d"
  "thinair"
  "thinair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thinair_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
