# Empty dependencies file for phase_test.
# This may be replaced when dependencies are built.
