file(REMOVE_RECURSE
  "CMakeFiles/phase_test.dir/tests/phase_test.cpp.o"
  "CMakeFiles/phase_test.dir/tests/phase_test.cpp.o.d"
  "phase_test"
  "phase_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
