# Empty dependencies file for reception_test.
# This may be replaced when dependencies are built.
