file(REMOVE_RECURSE
  "CMakeFiles/reception_test.dir/tests/reception_test.cpp.o"
  "CMakeFiles/reception_test.dir/tests/reception_test.cpp.o.d"
  "reception_test"
  "reception_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reception_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
