# Empty dependencies file for micro_gf.
# This may be replaced when dependencies are built.
