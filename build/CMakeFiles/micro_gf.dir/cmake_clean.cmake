file(REMOVE_RECURSE
  "CMakeFiles/micro_gf.dir/bench/micro_gf.cpp.o"
  "CMakeFiles/micro_gf.dir/bench/micro_gf.cpp.o.d"
  "micro_gf"
  "micro_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
