file(REMOVE_RECURSE
  "CMakeFiles/ablation_pool.dir/bench/ablation_pool.cpp.o"
  "CMakeFiles/ablation_pool.dir/bench/ablation_pool.cpp.o.d"
  "ablation_pool"
  "ablation_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
