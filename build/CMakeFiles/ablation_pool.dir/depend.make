# Empty dependencies file for ablation_pool.
# This may be replaced when dependencies are built.
