file(REMOVE_RECURSE
  "CMakeFiles/gf2_64_test.dir/tests/gf2_64_test.cpp.o"
  "CMakeFiles/gf2_64_test.dir/tests/gf2_64_test.cpp.o.d"
  "gf2_64_test"
  "gf2_64_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gf2_64_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
