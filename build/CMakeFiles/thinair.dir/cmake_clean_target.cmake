file(REMOVE_RECURSE
  "libthinair.a"
)
