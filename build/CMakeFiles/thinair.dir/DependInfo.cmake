
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/efficiency.cpp" "CMakeFiles/thinair.dir/src/analysis/efficiency.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/analysis/efficiency.cpp.o.d"
  "/root/repo/src/analysis/eve_view.cpp" "CMakeFiles/thinair.dir/src/analysis/eve_view.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/analysis/eve_view.cpp.o.d"
  "/root/repo/src/analysis/leakage.cpp" "CMakeFiles/thinair.dir/src/analysis/leakage.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/analysis/leakage.cpp.o.d"
  "/root/repo/src/auth/authenticator.cpp" "CMakeFiles/thinair.dir/src/auth/authenticator.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/auth/authenticator.cpp.o.d"
  "/root/repo/src/auth/onetime_mac.cpp" "CMakeFiles/thinair.dir/src/auth/onetime_mac.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/auth/onetime_mac.cpp.o.d"
  "/root/repo/src/channel/erasure.cpp" "CMakeFiles/thinair.dir/src/channel/erasure.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/channel/erasure.cpp.o.d"
  "/root/repo/src/channel/geometry.cpp" "CMakeFiles/thinair.dir/src/channel/geometry.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/channel/geometry.cpp.o.d"
  "/root/repo/src/channel/interference.cpp" "CMakeFiles/thinair.dir/src/channel/interference.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/channel/interference.cpp.o.d"
  "/root/repo/src/channel/pathloss.cpp" "CMakeFiles/thinair.dir/src/channel/pathloss.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/channel/pathloss.cpp.o.d"
  "/root/repo/src/channel/rng.cpp" "CMakeFiles/thinair.dir/src/channel/rng.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/channel/rng.cpp.o.d"
  "/root/repo/src/channel/sinr.cpp" "CMakeFiles/thinair.dir/src/channel/sinr.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/channel/sinr.cpp.o.d"
  "/root/repo/src/channel/testbed_channel.cpp" "CMakeFiles/thinair.dir/src/channel/testbed_channel.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/channel/testbed_channel.cpp.o.d"
  "/root/repo/src/core/estimator.cpp" "CMakeFiles/thinair.dir/src/core/estimator.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/core/estimator.cpp.o.d"
  "/root/repo/src/core/phase1.cpp" "CMakeFiles/thinair.dir/src/core/phase1.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/core/phase1.cpp.o.d"
  "/root/repo/src/core/phase2.cpp" "CMakeFiles/thinair.dir/src/core/phase2.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/core/phase2.cpp.o.d"
  "/root/repo/src/core/pool.cpp" "CMakeFiles/thinair.dir/src/core/pool.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/core/pool.cpp.o.d"
  "/root/repo/src/core/reception.cpp" "CMakeFiles/thinair.dir/src/core/reception.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/core/reception.cpp.o.d"
  "/root/repo/src/core/round.cpp" "CMakeFiles/thinair.dir/src/core/round.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/core/round.cpp.o.d"
  "/root/repo/src/core/secret.cpp" "CMakeFiles/thinair.dir/src/core/secret.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/core/secret.cpp.o.d"
  "/root/repo/src/core/session.cpp" "CMakeFiles/thinair.dir/src/core/session.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/core/session.cpp.o.d"
  "/root/repo/src/core/unicast.cpp" "CMakeFiles/thinair.dir/src/core/unicast.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/core/unicast.cpp.o.d"
  "/root/repo/src/gf/gf256.cpp" "CMakeFiles/thinair.dir/src/gf/gf256.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/gf/gf256.cpp.o.d"
  "/root/repo/src/gf/gf2_64.cpp" "CMakeFiles/thinair.dir/src/gf/gf2_64.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/gf/gf2_64.cpp.o.d"
  "/root/repo/src/gf/linear_space.cpp" "CMakeFiles/thinair.dir/src/gf/linear_space.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/gf/linear_space.cpp.o.d"
  "/root/repo/src/gf/matrix.cpp" "CMakeFiles/thinair.dir/src/gf/matrix.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/gf/matrix.cpp.o.d"
  "/root/repo/src/gf/mds.cpp" "CMakeFiles/thinair.dir/src/gf/mds.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/gf/mds.cpp.o.d"
  "/root/repo/src/net/ledger.cpp" "CMakeFiles/thinair.dir/src/net/ledger.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/net/ledger.cpp.o.d"
  "/root/repo/src/net/medium.cpp" "CMakeFiles/thinair.dir/src/net/medium.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/net/medium.cpp.o.d"
  "/root/repo/src/net/reliable.cpp" "CMakeFiles/thinair.dir/src/net/reliable.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/net/reliable.cpp.o.d"
  "/root/repo/src/net/trace.cpp" "CMakeFiles/thinair.dir/src/net/trace.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/net/trace.cpp.o.d"
  "/root/repo/src/packet/combination.cpp" "CMakeFiles/thinair.dir/src/packet/combination.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/packet/combination.cpp.o.d"
  "/root/repo/src/packet/packet.cpp" "CMakeFiles/thinair.dir/src/packet/packet.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/packet/packet.cpp.o.d"
  "/root/repo/src/packet/serialize.cpp" "CMakeFiles/thinair.dir/src/packet/serialize.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/packet/serialize.cpp.o.d"
  "/root/repo/src/runtime/engine.cpp" "CMakeFiles/thinair.dir/src/runtime/engine.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/runtime/engine.cpp.o.d"
  "/root/repo/src/runtime/result_sink.cpp" "CMakeFiles/thinair.dir/src/runtime/result_sink.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/runtime/result_sink.cpp.o.d"
  "/root/repo/src/runtime/scenario.cpp" "CMakeFiles/thinair.dir/src/runtime/scenario.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/runtime/scenario.cpp.o.d"
  "/root/repo/src/runtime/scenarios.cpp" "CMakeFiles/thinair.dir/src/runtime/scenarios.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/runtime/scenarios.cpp.o.d"
  "/root/repo/src/runtime/seed.cpp" "CMakeFiles/thinair.dir/src/runtime/seed.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/runtime/seed.cpp.o.d"
  "/root/repo/src/runtime/sweep_plan.cpp" "CMakeFiles/thinair.dir/src/runtime/sweep_plan.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/runtime/sweep_plan.cpp.o.d"
  "/root/repo/src/runtime/task_pool.cpp" "CMakeFiles/thinair.dir/src/runtime/task_pool.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/runtime/task_pool.cpp.o.d"
  "/root/repo/src/testbed/experiment.cpp" "CMakeFiles/thinair.dir/src/testbed/experiment.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/testbed/experiment.cpp.o.d"
  "/root/repo/src/testbed/layout.cpp" "CMakeFiles/thinair.dir/src/testbed/layout.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/testbed/layout.cpp.o.d"
  "/root/repo/src/testbed/placements.cpp" "CMakeFiles/thinair.dir/src/testbed/placements.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/testbed/placements.cpp.o.d"
  "/root/repo/src/testbed/sweep.cpp" "CMakeFiles/thinair.dir/src/testbed/sweep.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/testbed/sweep.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/thinair.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/thinair.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/thinair.dir/src/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
