# Empty dependencies file for thinair.
# This may be replaced when dependencies are built.
