# Empty dependencies file for round_test.
# This may be replaced when dependencies are built.
