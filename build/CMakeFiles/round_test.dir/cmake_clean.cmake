file(REMOVE_RECURSE
  "CMakeFiles/round_test.dir/tests/round_test.cpp.o"
  "CMakeFiles/round_test.dir/tests/round_test.cpp.o.d"
  "round_test"
  "round_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/round_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
