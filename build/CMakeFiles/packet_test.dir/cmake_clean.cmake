file(REMOVE_RECURSE
  "CMakeFiles/packet_test.dir/tests/packet_test.cpp.o"
  "CMakeFiles/packet_test.dir/tests/packet_test.cpp.o.d"
  "packet_test"
  "packet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
