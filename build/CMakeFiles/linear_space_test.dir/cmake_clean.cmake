file(REMOVE_RECURSE
  "CMakeFiles/linear_space_test.dir/tests/linear_space_test.cpp.o"
  "CMakeFiles/linear_space_test.dir/tests/linear_space_test.cpp.o.d"
  "linear_space_test"
  "linear_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
