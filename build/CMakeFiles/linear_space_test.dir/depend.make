# Empty dependencies file for linear_space_test.
# This may be replaced when dependencies are built.
